#pragma once
/// \file hierarchy.h
/// \brief Per-core memory system: split L1 I/D caches over off-chip memory.
///
/// Table 2 of the paper: 8 KB 2-way data and instruction caches per
/// processor, 2-cycle cache access, 75-cycle off-chip access. Each core
/// of the MPSoC owns one MemorySystem; there is no shared L2 (the paper
/// models none).

#include <cstdint>
#include <memory>
#include <optional>

#include "cache/cache.h"
#include "cache/miss_class.h"

namespace laps {

/// Configuration of one core's memory system.
struct MemoryConfig {
  CacheConfig l1d{};                  ///< data cache (Table 2 defaults)
  CacheConfig l1i{};                  ///< instruction cache
  std::int64_t memLatencyCycles = 75; ///< off-chip access (Table 2)
  bool modelICache = true;            ///< simulate instruction fetches
  bool classifyMisses = false;        ///< enable 3C classification (slower)
};

/// One core's private L1s plus the off-chip latency model. Returns the
/// latency of each access in cycles; keeps hit/miss statistics.
class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& config);

  /// One data reference; returns its latency in cycles.
  std::int64_t dataAccess(std::uint64_t addr, bool isWrite);

  /// \p count data references of the strided stream addr,
  /// addr + strideBytes, ...; returns their summed latency. Exactly
  /// equivalent to \p count dataAccess calls (cache state, statistics and
  /// miss classification included) but resolves each cache line's group
  /// of consecutive accesses with one lookup, and feeds the classifier
  /// once per line instead of once per element — the skipped accesses
  /// re-touch the shadow cache's most-recently-used line, which is a
  /// no-op for the 3C state and counters.
  std::int64_t accessRun(std::uint64_t addr, std::int64_t strideBytes,
                         std::int64_t count, bool isWrite);

  /// One instruction fetch; returns its latency in cycles
  /// (0 when instruction modeling is disabled).
  std::int64_t instrFetch(std::uint64_t addr);

  /// \name Bulk-replay primitives
  /// The run-length replay path (sim/replay.cpp) accounts the guaranteed
  /// hits it skips directly on the caches: bulkHits for the counters and
  /// LRU clock, touch for the exact final stamps of the lines involved.
  /// Bypassing the miss classifier here is exact — every skipped access
  /// re-touches shadow-cache lines that are already the most recently
  /// used, in an order that provably leaves the shadow state unchanged —
  /// see docs/ARCHITECTURE.md §6.
  /// @{
  [[nodiscard]] std::uint64_t dataClock() const { return dcache_.clock(); }
  void dataBulkHits(std::int64_t count) { dcache_.bulkHits(count); }
  void dataTouch(std::uint64_t addr, bool isWrite, std::uint64_t stamp) {
    dcache_.touch(addr, isWrite, stamp);
  }
  /// Replays one skipped (guaranteed-hit) access into the miss
  /// classifier's shadow LRU only. Needed when a bulk commit ends
  /// mid-iteration: the partial iteration's accesses rotate the shadow's
  /// most-recently-used block, which complete cycles do not.
  void dataShadowTouch(std::uint64_t addr) {
    if (classifier_) classifier_->record(addr, /*realMiss=*/false);
  }
  [[nodiscard]] std::uint64_t instrClock() const { return icache_.clock(); }
  void instrBulkHits(std::int64_t count) { icache_.bulkHits(count); }
  void instrTouch(std::uint64_t addr, std::uint64_t stamp) {
    icache_.touch(addr, /*isWrite=*/false, stamp);
  }
  /// @}

  /// Invalidates both caches (used by the flush-on-switch ablation).
  void flushAll();

  [[nodiscard]] const SetAssocCache& dcache() const { return dcache_; }
  [[nodiscard]] const SetAssocCache& icache() const { return icache_; }
  [[nodiscard]] const MemoryConfig& config() const { return config_; }

  /// Data-miss classification; zeros unless classifyMisses was set.
  [[nodiscard]] MissBreakdown dataMissBreakdown() const;

  void resetStats();

 private:
  MemoryConfig config_;
  SetAssocCache dcache_;
  SetAssocCache icache_;
  std::optional<MissClassifier> classifier_;
};

}  // namespace laps

#include "cache/bus.h"

#include <limits>
#include <string>

#include "util/audit.h"
#include "util/error.h"

namespace laps {

namespace audit {

void timelineDisjoint(const std::map<std::int64_t, std::int64_t>& busy) {
  std::int64_t prevEnd = std::numeric_limits<std::int64_t>::min();
  for (const auto& [start, end] : busy) {
    require(end > start, "BusyTimeline: interval [" + std::to_string(start) +
                             ", " + std::to_string(end) +
                             ") has non-positive extent");
    // Strict: abutting intervals (start == prevEnd) must have coalesced.
    require(start > prevEnd,
            "BusyTimeline: interval starting at " + std::to_string(start) +
                " overlaps or abuts the interval ending at " +
                std::to_string(prevEnd));
    prevEnd = end;
  }
}

}  // namespace audit

std::int64_t BusConfig::occupancyCycles(std::int64_t lineBytes) const {
  const std::int64_t transfer =
      (lineBytes + widthBytes - 1) / widthBytes;  // ceil
  return latencyCycles + transfer;
}

void BusConfig::validate() const {
  check(maxOutstanding >= 1, "BusConfig: maxOutstanding must be >= 1");
  check(widthBytes >= 1, "BusConfig: widthBytes must be >= 1");
  check(latencyCycles >= 1, "BusConfig: latencyCycles must be >= 1");
}

std::int64_t BusyTimeline::earliestStart(std::int64_t now,
                                         std::int64_t duration) const {
  std::int64_t cursor = now;
  auto it = busy_.upper_bound(now);
  if (it != busy_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > cursor) cursor = prev->second;
  }
  for (; it != busy_.end(); ++it) {
    if (it->first - cursor >= duration) break;  // gap fits
    if (it->second > cursor) cursor = it->second;
  }
  return cursor;
}

std::int64_t BusyTimeline::reserve(std::int64_t now, std::int64_t duration) {
  const std::int64_t start = earliestStart(now, duration);
  bookAt(start, duration);
  return start;
}

void BusyTimeline::bookAt(std::int64_t start, std::int64_t duration) {
  check(duration > 0, "BusyTimeline: duration must be positive");
  std::int64_t lo = start;
  std::int64_t hi = start + duration;
  // Coalesce with an abutting predecessor and/or successor so saturated
  // periods collapse into single intervals.
  auto next = busy_.lower_bound(lo);
  if (next != busy_.begin()) {
    auto prev = std::prev(next);
    if (prev->second == lo) {
      lo = prev->first;
      busy_.erase(prev);
    }
  }
  next = busy_.lower_bound(lo);
  if (next != busy_.end() && next->first == hi) {
    hi = next->second;
    busy_.erase(next);
  }
  busy_.emplace(lo, hi);
  // Every mutation funnels through here (reserve() calls bookAt), so
  // this one call site audits the whole calendar discipline.
  LAPS_AUDIT(audit::timelineDisjoint(busy_));
}

void BusyTimeline::retireBefore(std::int64_t cycle) {
  for (auto it = busy_.begin(); it != busy_.end() && it->second <= cycle;) {
    it = busy_.erase(it);
  }
}

MemoryBus::MemoryBus(const BusConfig& config, std::int64_t lineBytes)
    : config_(config), occupancyCycles_(config.occupancyCycles(lineBytes)) {
  config_.validate();
  check(lineBytes >= 1, "MemoryBus: lineBytes must be >= 1");
  slots_.resize(static_cast<std::size_t>(config_.maxOutstanding));
}

std::int64_t MemoryBus::reserveBestSlot(std::int64_t now) {
  std::size_t best = 0;
  std::int64_t bestStart = std::numeric_limits<std::int64_t>::max();
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    const std::int64_t start = slots_[s].earliestStart(now, occupancyCycles_);
    if (start < bestStart) {
      bestStart = start;
      best = s;
      if (start == now) break;  // cannot do better than no wait
    }
  }
  slots_[best].bookAt(bestStart, occupancyCycles_);
  return bestStart;
}

std::int64_t MemoryBus::demandAccess(std::int64_t now) {
  const std::int64_t start = reserveBestSlot(now);
  ++stats_.transactions;
  stats_.waitCycles += static_cast<std::uint64_t>(start - now);
  return (start - now) + occupancyCycles_;
}

void MemoryBus::postedAccess(std::int64_t now) {
  reserveBestSlot(now);
  ++stats_.transactions;
}

void MemoryBus::retireBefore(std::int64_t cycle) {
  for (BusyTimeline& slot : slots_) slot.retireBefore(cycle);
}

}  // namespace laps

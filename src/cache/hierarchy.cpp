#include "cache/hierarchy.h"

#include <algorithm>
#include <string>

#include "util/audit.h"
#include "util/error.h"

namespace laps {

void MemoryHierarchy::auditInclusion() const {
  if (!l2_) return;
  for (std::size_t i = 0; i < l1DataCaches_.size(); ++i) {
    for (const std::uint64_t lineAddr : l1DataCaches_[i]->residentLineAddrs()) {
      audit::require(l2_->probe(lineAddr),
                     "inclusion violated: L1 data cache " + std::to_string(i) +
                         " holds line " + std::to_string(lineAddr) +
                         " that is not L2-resident");
    }
  }
}

void MemoryHierarchy::auditLineAbsent(std::uint64_t lineAddr) const {
  for (std::size_t i = 0; i < l1DataCaches_.size(); ++i) {
    audit::require(!l1DataCaches_[i]->probe(lineAddr),
                   "back-invalidation incomplete: L1 data cache " +
                       std::to_string(i) + " still holds evicted line " +
                       std::to_string(lineAddr));
  }
}

MemoryHierarchy::MemoryHierarchy(std::int64_t memLatencyCycles)
    : memLatencyCycles_(memLatencyCycles) {}

MemoryHierarchy::MemoryHierarchy(std::int64_t memLatencyCycles,
                                 const std::optional<SharedL2Config>& l2,
                                 const std::optional<BusConfig>& bus,
                                 std::int64_t lineBytes)
    : memLatencyCycles_(memLatencyCycles) {
  if (l2) {
    check(l2->lineBytes == lineBytes,
          "MemoryHierarchy: shared L2 line size must match the L1s");
    l2_.emplace(*l2);
  }
  if (bus) {
    bus_.emplace(*bus, lineBytes);
  }
}

MemoryHierarchy::MemoryHierarchy(std::int64_t memLatencyCycles,
                                 const PlatformConfig& platform,
                                 std::size_t coreCount, std::int64_t lineBytes)
    : memLatencyCycles_(memLatencyCycles) {
  platform.validate(coreCount);
  if (platform.sharedL2) {
    check(platform.sharedL2->lineBytes == lineBytes,
          "MemoryHierarchy: shared L2 line size must match the L1s");
    l2_.emplace(*platform.sharedL2);
  }
  if (platform.busEnabled()) {
    bus_.emplace(platform.bus, lineBytes);
  }
  if (platform.nocEnabled()) {
    noc_.emplace(platform.noc, static_cast<std::int64_t>(coreCount),
                 lineBytes, platform.nocKind());
  }
  if (platform.coherence == CoherenceKind::Directory) {
    directory_.emplace(coreCount);
  }
}

std::int64_t MemoryHierarchy::bankHomeNode(std::int64_t bank) const {
  return bank % noc_->topology().nodeCount();
}

void MemoryHierarchy::registerDataCache(SetAssocCache* l1d) {
  l1DataCaches_.push_back(l1d);
}

void MemoryHierarchy::unregisterDataCache(SetAssocCache* l1d) {
  l1DataCaches_.erase(
      std::remove(l1DataCaches_.begin(), l1DataCaches_.end(), l1d),
      l1DataCaches_.end());
}

std::int64_t MemoryHierarchy::missLatency(std::uint64_t addr,
                                          std::int64_t now, std::size_t core,
                                          bool dataFill) {
  const std::int64_t node = static_cast<std::int64_t>(core);
  if (!l2_) {
    // The memory controller sits at NoC node 0.
    std::int64_t latency = noc_ ? noc_->demandTransfer(node, 0, now) : 0;
    latency += bus_ ? bus_->demandAccess(now + latency) : memLatencyCycles_;
    return latency;
  }

  // The request first travels to the accessed bank's home tile.
  const std::int64_t home =
      noc_ ? bankHomeNode(l2_->bankOf(addr)) : 0;
  std::int64_t latency = noc_ ? noc_->demandTransfer(node, home, now) : 0;

  const L2AccessResult l2 = l2_->access(addr, now + latency);
  latency += l2.bankWaitCycles + l2_->config().hitLatencyCycles;

  // Inclusion: the evicted line may live on in L1 data caches — drop
  // those copies before anything else observes the L2 state. With a
  // directory, only the recorded sharers are probed; the recall rides
  // the NoC as posted invalidations (home tile -> sharer tile).
  bool victimDirty = l2.evictedLineDirty;
  if (l2.evictedLineAddr) {
    bool l1Dirty = false;
    if (directory_) {
      const std::uint64_t mask = directory_->sharersOf(*l2.evictedLineAddr);
      for (std::size_t c = 0; c < l1DataCaches_.size() && c < 64; ++c) {
        if (!(mask >> c & 1)) continue;
        l1Dirty |= l1DataCaches_[c]->invalidateLine(*l2.evictedLineAddr);
        if (noc_) {
          noc_->postedTransfer(home, static_cast<std::int64_t>(c),
                               now + latency);
        }
      }
      directory_->noteInvalidationRound(mask, l1DataCaches_.size());
      directory_->dropLine(*l2.evictedLineAddr);
    } else {
      for (SetAssocCache* l1 : l1DataCaches_) {
        l1Dirty |= l1->invalidateLine(*l2.evictedLineAddr);
      }
    }
    // A dirty L1 copy whose L2 entry was clean still leaves the chip;
    // count it so the energy model sees every off-chip write.
    if (l1Dirty && !victimDirty) ++inclusionWritebacks_;
    victimDirty |= l1Dirty;
    LAPS_AUDIT(auditLineAbsent(*l2.evictedLineAddr));
  }

  if (l2.outcome == AccessOutcome::Miss) {
    // The fill continues from the bank's home tile to the memory
    // controller at node 0, then off chip.
    std::int64_t fill =
        noc_ ? noc_->demandTransfer(home, 0, now + latency) : 0;
    fill += bus_ ? bus_->demandAccess(now + latency + fill)
                 : memLatencyCycles_;
    latency += fill;
  }

  // The fill installs the line in the requester's L1 data cache: record
  // the sharer so a later back-invalidation can find it. Directory-mode
  // callers flag data fills explicitly; instruction fetches never set
  // it (icaches are inclusion-exempt and never probed).
  if (directory_ && dataFill) {
    const auto lineBytes =
        static_cast<std::uint64_t>(l2_->config().lineBytes);
    directory_->recordSharer(addr - addr % lineBytes, core);
  }

  // The victim's write-back is posted *after* the demand fill resolves
  // (a write buffer drains behind the fill): it occupies the bus,
  // delaying later traffic, but never stalls its own requester.
  if (victimDirty && bus_) {
    bus_->postedAccess(now + latency);
  }
  if (victimDirty && noc_) {
    noc_->postedTransfer(home, 0, now + latency);
  }
  return latency;
}

bool MemoryHierarchy::absorbL1Writeback(std::uint64_t lineAddr) {
  return l2_ && l2_->writeback(lineAddr);
}

void MemoryHierarchy::postL1Writeback(std::int64_t now) {
  // With an L2 present this write bypassed it (the line was already
  // gone), so no L2 counter will ever see it leave the chip.
  if (l2_) ++inclusionWritebacks_;
  if (bus_) bus_->postedAccess(now);
}

void MemoryHierarchy::resetStats() {
  if (l2_) l2_->resetStats();
  if (bus_) bus_->resetStats();
  if (noc_) noc_->resetStats();
  if (directory_) directory_->resetStats();
  inclusionWritebacks_ = 0;
}

void MemoryHierarchy::retireBefore(std::int64_t cycle) {
  if (l2_) l2_->retireBefore(cycle);
  if (bus_) bus_->retireBefore(cycle);
  if (noc_) noc_->retireBefore(cycle);
  // Segment boundary: the natural cadence for the full inclusion scan
  // (the per-miss auditLineAbsent covers the mutation points between).
  LAPS_AUDIT(auditInclusion());
}

MemorySystem::MemorySystem(const MemoryConfig& config,
                           std::shared_ptr<MemoryHierarchy> shared,
                           std::size_t coreIndex)
    : config_(config),
      hierarchy_(shared ? std::move(shared)
                        : std::make_shared<MemoryHierarchy>(
                              config.memLatencyCycles)),
      coreIndex_(coreIndex),
      dcache_(config.l1d),
      icache_(config.l1i) {
  if (config_.classifyMisses) {
    classifier_.emplace(config_.l1d);
  }
  hierarchy_->registerDataCache(&dcache_);
}

MemorySystem::~MemorySystem() {
  hierarchy_->unregisterDataCache(&dcache_);
}

std::int64_t MemorySystem::dataAccess(std::uint64_t addr, bool isWrite,
                                      std::int64_t nowCycles) {
  EvictionInfo evicted;
  const AccessOutcome outcome = dcache_.access(addr, isWrite, &evicted);
  if (classifier_) {
    classifier_->record(addr, outcome == AccessOutcome::Miss);
  }
  if (outcome == AccessOutcome::Hit) {
    return config_.l1d.hitLatencyCycles;
  }
  return config_.l1d.hitLatencyCycles +
         missBeyondL1(addr, evicted,
                      nowCycles + config_.l1d.hitLatencyCycles);
}

std::int64_t MemorySystem::missBeyondL1(std::uint64_t addr,
                                        const EvictionInfo& evicted,
                                        std::int64_t issueCycle) {
  const bool dirtyVictim = evicted.evicted && evicted.dirty;
  const bool absorbed =
      dirtyVictim && hierarchy_->absorbL1Writeback(evicted.lineAddr);
  const std::int64_t latency = hierarchy_->missLatency(
      addr, issueCycle, coreIndex_, /*dataFill=*/true);
  if (dirtyVictim && !absorbed) {
    hierarchy_->postL1Writeback(issueCycle + latency);
  }
  return latency;
}

std::int64_t MemorySystem::accessRun(std::uint64_t addr,
                                     std::int64_t strideBytes,
                                     std::int64_t count, bool isWrite,
                                     std::int64_t nowCycles) {
  std::int64_t latency = 0;
  while (count > 0) {
    const std::int64_t group = std::min(
        count, lineRunLength(addr, strideBytes, config_.l1d.lineBytes));
    EvictionInfo evicted;
    const AccessOutcome head = dcache_.access(addr, isWrite, &evicted);
    if (classifier_) {
      classifier_->record(addr, head == AccessOutcome::Miss);
    }
    if (group > 1) {
      dcache_.bulkHits(group - 1);
      dcache_.touch(addr, isWrite, dcache_.clock());
    }
    if (head == AccessOutcome::Miss) {
      latency += missBeyondL1(
          addr, evicted, nowCycles + latency + config_.l1d.hitLatencyCycles);
    }
    latency += config_.l1d.hitLatencyCycles * group;
    addr += static_cast<std::uint64_t>(strideBytes * group);
    count -= group;
  }
  return latency;
}

std::int64_t MemorySystem::instrFetch(std::uint64_t addr,
                                      std::int64_t nowCycles) {
  if (!config_.modelICache) return 0;
  const AccessOutcome outcome = icache_.access(addr, /*isWrite=*/false);
  if (outcome == AccessOutcome::Hit) {
    return config_.l1i.hitLatencyCycles;
  }
  // Instruction lines are never dirty: no write-back on eviction.
  return config_.l1i.hitLatencyCycles +
         hierarchy_->missLatency(addr,
                                 nowCycles + config_.l1i.hitLatencyCycles,
                                 coreIndex_, /*dataFill=*/false);
}

void MemorySystem::flushAll() {
  dcache_.flush();
  icache_.flush();
  if (classifier_) classifier_->flushShadow();
}

MissBreakdown MemorySystem::dataMissBreakdown() const {
  return classifier_ ? classifier_->breakdown() : MissBreakdown{};
}

void MemorySystem::resetStats() {
  dcache_.resetStats();
  icache_.resetStats();
  if (classifier_) classifier_->resetStats();
}

}  // namespace laps

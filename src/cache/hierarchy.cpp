#include "cache/hierarchy.h"

#include <algorithm>

namespace laps {

MemorySystem::MemorySystem(const MemoryConfig& config)
    : config_(config), dcache_(config.l1d), icache_(config.l1i) {
  if (config_.classifyMisses) {
    classifier_.emplace(config_.l1d);
  }
}

std::int64_t MemorySystem::dataAccess(std::uint64_t addr, bool isWrite) {
  const AccessOutcome outcome = dcache_.access(addr, isWrite);
  if (classifier_) {
    classifier_->record(addr, outcome == AccessOutcome::Miss);
  }
  if (outcome == AccessOutcome::Hit) {
    return config_.l1d.hitLatencyCycles;
  }
  return config_.l1d.hitLatencyCycles + config_.memLatencyCycles;
}

std::int64_t MemorySystem::accessRun(std::uint64_t addr,
                                     std::int64_t strideBytes,
                                     std::int64_t count, bool isWrite) {
  std::int64_t latency = 0;
  while (count > 0) {
    const std::int64_t group = std::min(
        count, lineRunLength(addr, strideBytes, config_.l1d.lineBytes));
    const AccessOutcome head = dcache_.access(addr, isWrite);
    if (classifier_) {
      classifier_->record(addr, head == AccessOutcome::Miss);
    }
    if (group > 1) {
      dcache_.bulkHits(group - 1);
      dcache_.touch(addr, isWrite, dcache_.clock());
    }
    latency += config_.l1d.hitLatencyCycles * group;
    if (head == AccessOutcome::Miss) latency += config_.memLatencyCycles;
    addr += static_cast<std::uint64_t>(strideBytes * group);
    count -= group;
  }
  return latency;
}

std::int64_t MemorySystem::instrFetch(std::uint64_t addr) {
  if (!config_.modelICache) return 0;
  const AccessOutcome outcome = icache_.access(addr, /*isWrite=*/false);
  if (outcome == AccessOutcome::Hit) {
    return config_.l1i.hitLatencyCycles;
  }
  return config_.l1i.hitLatencyCycles + config_.memLatencyCycles;
}

void MemorySystem::flushAll() {
  dcache_.flush();
  icache_.flush();
  if (classifier_) classifier_->flushShadow();
}

MissBreakdown MemorySystem::dataMissBreakdown() const {
  return classifier_ ? classifier_->breakdown() : MissBreakdown{};
}

void MemorySystem::resetStats() {
  dcache_.resetStats();
  icache_.resetStats();
  if (classifier_) classifier_->resetStats();
}

}  // namespace laps

#include "cache/miss_class.h"

namespace laps {

MissClassifier::MissClassifier(const CacheConfig& config)
    : lineBytes_(config.lineBytes),
      capacityLines_(static_cast<std::size_t>(config.numLines())) {}

bool MissClassifier::shadowAccess(std::uint64_t line) {
  const auto it = where_.find(line);
  if (it != where_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
    return true;
  }
  lru_.push_front(line);
  where_[line] = lru_.begin();
  if (lru_.size() > capacityLines_) {
    where_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

std::optional<MissKind> MissClassifier::record(std::uint64_t addr,
                                               bool realMiss) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(lineBytes_);
  const bool seenBefore = !everSeen_.insert(line).second;
  const bool shadowHit = shadowAccess(line);
  if (!realMiss) return std::nullopt;

  MissKind kind;
  if (!seenBefore) {
    kind = MissKind::Compulsory;
    ++breakdown_.compulsory;
  } else if (shadowHit) {
    kind = MissKind::Conflict;
    ++breakdown_.conflict;
  } else {
    kind = MissKind::Capacity;
    ++breakdown_.capacity;
  }
  return kind;
}

void MissClassifier::flushShadow() {
  lru_.clear();
  where_.clear();
}

}  // namespace laps

#pragma once
/// \file directory.h
/// \brief Sharer-bitmask coherence directory for the inclusive shared
/// L2's back-invalidations.
///
/// The broadcast protocol (cache/hierarchy.cpp) probes every private L1
/// data cache whenever an inclusive L2 victim must be recalled. A
/// directory instead remembers, per L2-resident line, a bitmask of the
/// cores whose L1 may hold it, and recalls only those — the targeted
/// invalidations ride the NoC (cache/noc.h) as posted transfers.
///
/// The mask is a deliberate over-approximation: bits are set on every
/// data-side fill and cleared only when the line is recalled, never on
/// silent L1 evictions (real hardware does the same — silent drops are
/// cheaper than notify-on-evict). Functional equivalence with the
/// broadcast path follows:
///
///  * every L1-resident line got there via a fill that set its bit, so
///    mask ⊇ actual holders — no holder is ever skipped;
///  * SetAssocCache::invalidateLine on a non-holder returns false and
///    changes nothing, so probing the (stale) extra bits is harmless;
///  * therefore the dirty-victim fold, inclusionWritebacks and final
///    cache state match the broadcast protocol exactly — the oracle
///    test in tests/cache/directory_test.cpp replays random access
///    streams through both and compares, and the LAPS_AUDIT inclusion
///    invariant (which always checks *all* caches) backstops the
///    over-approximation argument in audit builds.
///
/// Like every model class, the directory is integer-only and iterates
/// an ordered map, keeping the determinism contract (ARCHITECTURE §12).

#include <cstdint>
#include <map>

namespace laps {

/// Counters accumulated by the directory.
struct DirectoryStats {
  /// Targeted invalidation probes actually sent.
  std::uint64_t invalidationsSent = 0;
  /// Probes the broadcast protocol would have issued that the
  /// directory's mask filtered out — the protocol's whole point.
  std::uint64_t invalidationsFiltered = 0;
};

/// Per-line sharer bitmasks for up to 64 cores (see file comment).
class SharerDirectory {
 public:
  /// Throws laps::Error when \p coreCount exceeds the 64-bit mask.
  explicit SharerDirectory(std::size_t coreCount);

  /// Records that \p core 's L1 data cache filled \p lineAddr.
  void recordSharer(std::uint64_t lineAddr, std::size_t core);

  /// Bitmask of cores whose L1 may hold \p lineAddr (0 if untracked).
  [[nodiscard]] std::uint64_t sharersOf(std::uint64_t lineAddr) const;

  /// Forgets \p lineAddr after its back-invalidation round.
  void dropLine(std::uint64_t lineAddr);

  /// Accounts one back-invalidation round that probed the set bits of
  /// \p mask instead of broadcasting to all \p probeTargets caches.
  void noteInvalidationRound(std::uint64_t mask, std::size_t probeTargets);

  /// Lines currently tracked (test / audit seam).
  [[nodiscard]] std::size_t trackedLines() const { return sharers_.size(); }

  [[nodiscard]] const DirectoryStats& stats() const { return stats_; }
  void resetStats() { stats_ = DirectoryStats{}; }

 private:
  std::size_t coreCount_;
  std::map<std::uint64_t, std::uint64_t> sharers_;  ///< line -> core mask
  DirectoryStats stats_;
};

}  // namespace laps

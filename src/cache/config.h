#pragma once
/// \file config.h
/// \brief Cache geometry and latency configuration.
///
/// Defaults match the paper's Table 2: 8 KB, 2-way, 2-cycle access.
/// The "cache page" (paper footnote 1: cache size / associativity) is the
/// address granularity at which the data re-layout of Fig. 4 operates.

#include <cstdint>
#include <string>

namespace laps {

/// Geometry and timing of one set-associative cache.
struct CacheConfig {
  std::int64_t sizeBytes = 8 * 1024;  ///< total capacity (Table 2: 8 KB)
  std::int64_t assoc = 2;             ///< ways per set (Table 2: 2-way)
  std::int64_t lineBytes = 32;        ///< cache line size
  std::int64_t hitLatencyCycles = 2;  ///< Table 2: 2-cycle access

  /// Number of sets (sizeBytes / (assoc * lineBytes)).
  [[nodiscard]] std::int64_t numSets() const {
    return sizeBytes / (assoc * lineBytes);
  }

  /// Number of lines the cache can hold.
  [[nodiscard]] std::int64_t numLines() const { return sizeBytes / lineBytes; }

  /// The paper's cache page: size / associativity. Two addresses whose
  /// offsets within a cache page differ can never map to the same set.
  [[nodiscard]] std::int64_t cachePageBytes() const {
    return sizeBytes / assoc;
  }

  /// Set index of a byte address.
  [[nodiscard]] std::int64_t setIndexOf(std::uint64_t addr) const {
    return static_cast<std::int64_t>(
        (addr / static_cast<std::uint64_t>(lineBytes)) %
        static_cast<std::uint64_t>(numSets()));
  }

  /// Tag of a byte address (line address divided by number of sets).
  [[nodiscard]] std::uint64_t tagOf(std::uint64_t addr) const {
    return (addr / static_cast<std::uint64_t>(lineBytes)) /
           static_cast<std::uint64_t>(numSets());
  }

  /// Throws laps::Error when the geometry is inconsistent (non-positive
  /// fields, capacity not divisible into sets, non-power-of-two sizes).
  void validate() const;

  [[nodiscard]] std::string toString() const;
};

}  // namespace laps

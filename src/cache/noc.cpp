#include "cache/noc.h"

#include "util/error.h"

namespace laps {
namespace {

/// Smallest c with c*c >= n (integer ceil-sqrt; n is a core count, so
/// the linear walk is trivially cheap and stays float-free).
std::int64_t ceilSqrt(std::int64_t n) {
  std::int64_t c = 1;
  while (c * c < n) ++c;
  return c;
}

std::int64_t deriveCols(std::int64_t nodeCount, std::int64_t meshCols) {
  return meshCols > 0 ? meshCols : ceilSqrt(nodeCount);
}

}  // namespace

void NocConfig::validate(std::int64_t nodeCount) const {
  check(nodeCount >= 1, "NocConfig: node count must be positive");
  check(meshCols >= 0, "NocConfig: meshCols must be non-negative");
  check(hopCycles >= 0, "NocConfig: hopCycles must be non-negative");
  check(linkWidthBytes >= 0, "NocConfig: linkWidthBytes must be non-negative");
  check(migrationHopCycles >= 0,
        "NocConfig: migrationHopCycles must be non-negative");
  check(meshCols <= nodeCount,
        "NocConfig: meshCols exceeds the node count");
}

NocTopology::NocTopology(NocTopologyKind kind, std::int64_t nodeCount,
                         std::int64_t meshCols)
    : kind_(kind), nodeCount_(nodeCount) {
  check(nodeCount_ >= 1, "NocTopology: node count must be positive");
  if (kind_ == NocTopologyKind::Mesh) {
    cols_ = deriveCols(nodeCount_, meshCols);
    check(cols_ >= 1 && cols_ <= nodeCount_, "NocTopology: bad column count");
    rows_ = (nodeCount_ + cols_ - 1) / cols_;
  }
}

std::int64_t NocTopology::hops(std::int64_t a, std::int64_t b) const {
  check(a >= 0 && a < nodeCount_ && b >= 0 && b < nodeCount_,
        "NocTopology: node out of range");
  if (kind_ == NocTopologyKind::Xbar) return a == b ? 0 : 1;
  const std::int64_t dr = a / cols_ - b / cols_;
  const std::int64_t dc = a % cols_ - b % cols_;
  return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
}

std::int64_t NocTopology::maxHops() const {
  if (kind_ == NocTopologyKind::Xbar) return nodeCount_ > 1 ? 1 : 0;
  // Even when the last row is ragged, cells (0, cols-1) and (rows-1, 0)
  // are always populated, so the populated-grid diameter is the full
  // bounding-box diameter.
  return (rows_ - 1) + (cols_ - 1);
}

std::int64_t NocTopology::eccentricity(std::int64_t node) const {
  std::int64_t total = 0;
  for (std::int64_t other = 0; other < nodeCount_; ++other) {
    total += hops(node, other);
  }
  return total;
}

std::vector<std::int64_t> NocTopology::spiralOrder() const {
  std::vector<std::int64_t> order;
  order.reserve(static_cast<std::size_t>(nodeCount_));
  if (kind_ == NocTopologyKind::Xbar || nodeCount_ == 1) {
    for (std::int64_t n = 0; n < nodeCount_; ++n) order.push_back(n);
    return order;
  }
  // Classic outward spiral from the (low-biased) center cell: step
  // east, south, west, north with run lengths 1, 1, 2, 2, 3, 3, ...
  // Cells outside the populated grid are skipped, so the result is a
  // permutation of [0, nodeCount) for ragged meshes too.
  std::int64_t r = (rows_ - 1) / 2;
  std::int64_t c = (cols_ - 1) / 2;
  static constexpr std::int64_t kDr[4] = {0, 1, 0, -1};  // E S W N
  static constexpr std::int64_t kDc[4] = {1, 0, -1, 0};
  std::int64_t dir = 0;
  std::int64_t run = 1;
  auto visit = [&](std::int64_t row, std::int64_t col) {
    if (row < 0 || row >= rows_ || col < 0 || col >= cols_) return;
    const std::int64_t id = row * cols_ + col;
    if (id < nodeCount_) order.push_back(id);
  };
  visit(r, c);
  while (static_cast<std::int64_t>(order.size()) < nodeCount_) {
    for (int leg = 0; leg < 2; ++leg) {
      for (std::int64_t step = 0; step < run; ++step) {
        r += kDr[dir];
        c += kDc[dir];
        visit(r, c);
      }
      dir = (dir + 1) % 4;
    }
    ++run;
    check(run <= rows_ + cols_ + 2, "NocTopology: spiral failed to cover");
  }
  return order;
}

NocFabric::NocFabric(const NocConfig& config, std::int64_t nodeCount,
                     std::int64_t lineBytes, NocTopologyKind kind)
    : config_(config), topology_(kind, nodeCount, config.meshCols) {
  config_.validate(nodeCount);
  check(lineBytes >= 1, "NocFabric: lineBytes must be positive");
  if (config_.linkWidthBytes > 0) {
    occupancyCycles_ =
        (lineBytes + config_.linkWidthBytes - 1) / config_.linkWidthBytes;
    if (occupancyCycles_ < 1) occupancyCycles_ = 1;
  }
  const std::size_t linkCount =
      kind == NocTopologyKind::Mesh
          ? static_cast<std::size_t>(nodeCount) * 4
          : static_cast<std::size_t>(nodeCount);
  links_.resize(linkCount);
}

std::int64_t NocFabric::traverseLink(std::size_t linkId, std::int64_t t,
                                     std::int64_t* wait) {
  if (occupancyCycles_ > 0) {
    const std::int64_t start = links_[linkId].reserve(t, occupancyCycles_);
    *wait += start - t;
    t = start;
  }
  return t + config_.hopCycles;
}

std::int64_t NocFabric::route(std::int64_t src, std::int64_t dst,
                              std::int64_t now, bool demand) {
  if (src == dst) return 0;
  std::int64_t t = now;
  std::int64_t wait = 0;
  std::int64_t hopCount = 0;
  if (topology_.kind() == NocTopologyKind::Xbar) {
    // Single stage: contention is on the destination's output port.
    t = traverseLink(static_cast<std::size_t>(dst), t, &wait);
    hopCount = 1;
  } else {
    // XY dimension-order routing: resolve the column first, then the
    // row. Directed links are indexed node*4 + {E=0, W=1, S=2, N=3}.
    const std::int64_t cols = topology_.cols();
    std::int64_t r = src / cols;
    std::int64_t c = src % cols;
    const std::int64_t dr = dst / cols;
    const std::int64_t dc = dst % cols;
    while (c != dc) {
      const std::int64_t dir = c < dc ? 0 : 1;
      t = traverseLink(static_cast<std::size_t>((r * cols + c) * 4 + dir), t,
                       &wait);
      c += c < dc ? 1 : -1;
      ++hopCount;
    }
    while (r != dr) {
      const std::int64_t dir = r < dr ? 2 : 3;
      t = traverseLink(static_cast<std::size_t>((r * cols + c) * 4 + dir), t,
                       &wait);
      r += r < dr ? 1 : -1;
      ++hopCount;
    }
  }
  if (demand) {
    ++stats_.transfers;
    stats_.hopCycles += static_cast<std::uint64_t>(hopCount * config_.hopCycles);
    stats_.linkWaitCycles += static_cast<std::uint64_t>(wait);
  } else {
    ++stats_.postedTransfers;
  }
  return t - now;
}

std::int64_t NocFabric::demandTransfer(std::int64_t src, std::int64_t dst,
                                       std::int64_t now) {
  return route(src, dst, now, /*demand=*/true);
}

void NocFabric::postedTransfer(std::int64_t src, std::int64_t dst,
                               std::int64_t now) {
  route(src, dst, now, /*demand=*/false);
}

void NocFabric::retireBefore(std::int64_t cycle) {
  for (BusyTimeline& link : links_) link.retireBefore(cycle);
}

}  // namespace laps

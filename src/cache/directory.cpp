#include "cache/directory.h"

#include "util/error.h"

namespace laps {

SharerDirectory::SharerDirectory(std::size_t coreCount)
    : coreCount_(coreCount) {
  check(coreCount_ >= 1, "SharerDirectory: core count must be positive");
  check(coreCount_ <= 64,
        "SharerDirectory: the sharer bitmask holds at most 64 cores");
}

void SharerDirectory::recordSharer(std::uint64_t lineAddr, std::size_t core) {
  check(core < coreCount_, "SharerDirectory: core out of range");
  sharers_[lineAddr] |= std::uint64_t{1} << core;
}

std::uint64_t SharerDirectory::sharersOf(std::uint64_t lineAddr) const {
  const auto it = sharers_.find(lineAddr);
  return it == sharers_.end() ? 0 : it->second;
}

void SharerDirectory::dropLine(std::uint64_t lineAddr) {
  sharers_.erase(lineAddr);
}

void SharerDirectory::noteInvalidationRound(std::uint64_t mask,
                                            std::size_t probeTargets) {
  std::size_t sent = 0;
  for (std::size_t c = 0; c < probeTargets && c < 64; ++c) {
    if (mask >> c & 1) ++sent;
  }
  stats_.invalidationsSent += sent;
  stats_.invalidationsFiltered += probeTargets - sent;
}

}  // namespace laps

#include "cache/cache.h"

#include <algorithm>

#include "util/error.h"
#include "util/stride.h"

namespace laps {

std::int64_t lineRunLength(std::uint64_t addr, std::int64_t strideBytes,
                           std::int64_t lineBytes) {
  return strideRunLength(addr, strideBytes, lineBytes);
}

void CacheStats::accumulate(const CacheStats& other) {
  accesses += other.accesses;
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  dirtyEvictions += other.dirtyEvictions;
  invalidations += other.invalidations;
}

SetAssocCache::SetAssocCache(CacheConfig config) : config_(config) {
  config_.validate();
  ways_.resize(static_cast<std::size_t>(config_.numSets() * config_.assoc));
}

SetAssocCache::Way* SetAssocCache::lookup(std::uint64_t addr, Way** victim) {
  const std::int64_t set = config_.setIndexOf(addr);
  const std::uint64_t tag = config_.tagOf(addr);
  const std::size_t base = static_cast<std::size_t>(set * config_.assoc);
  const std::size_t assoc = static_cast<std::size_t>(config_.assoc);
  std::size_t candidate = base;
  for (std::size_t w = base; w < base + assoc; ++w) {
    Way& way = ways_[w];
    if (way.valid && way.tag == tag) return &way;
    // Track the LRU (or first invalid) way as the victim candidate.
    if (!ways_[candidate].valid) {
      continue;  // already found an invalid slot
    }
    if (!way.valid || way.lastUse < ways_[candidate].lastUse) {
      candidate = w;
    }
  }
  if (victim != nullptr) *victim = &ways_[candidate];
  return nullptr;
}

AccessOutcome SetAssocCache::access(std::uint64_t addr, bool isWrite,
                                    EvictionInfo* evicted) {
  ++stats_.accesses;
  ++useClock_;
  Way* victim = nullptr;
  if (Way* way = lookup(addr, &victim)) {
    way->lastUse = useClock_;
    way->dirty |= isWrite;
    ++stats_.hits;
    return AccessOutcome::Hit;
  }
  ++stats_.misses;
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) ++stats_.dirtyEvictions;
    if (evicted != nullptr) {
      const std::int64_t set = config_.setIndexOf(addr);
      evicted->evicted = true;
      evicted->dirty = victim->dirty;
      evicted->lineAddr =
          (victim->tag * static_cast<std::uint64_t>(config_.numSets()) +
           static_cast<std::uint64_t>(set)) *
          static_cast<std::uint64_t>(config_.lineBytes);
    }
  }
  victim->tag = config_.tagOf(addr);
  victim->valid = true;
  victim->dirty = isWrite;  // write-allocate
  victim->lastUse = useClock_;
  return AccessOutcome::Miss;
}

AccessRunOutcome SetAssocCache::accessRun(std::uint64_t addr,
                                          std::int64_t strideBytes,
                                          std::int64_t count, bool isWrite) {
  AccessRunOutcome outcome;
  while (count > 0) {
    const std::int64_t group =
        std::min(count, lineRunLength(addr, strideBytes, config_.lineBytes));
    // One associative search resolves the whole group: the first access
    // hits or misses-and-fills, the remaining group-1 accesses re-touch
    // the same line (guaranteed hits). The line's final LRU stamp is the
    // clock of the group's last access, exactly as per-element simulation
    // would leave it.
    stats_.accesses += static_cast<std::uint64_t>(group);
    useClock_ += static_cast<std::uint64_t>(group);
    Way* victim = nullptr;
    Way* way = lookup(addr, &victim);
    if (way != nullptr) {
      stats_.hits += static_cast<std::uint64_t>(group);
      outcome.hits += group;
    } else {
      way = victim;
      ++stats_.misses;
      stats_.hits += static_cast<std::uint64_t>(group - 1);
      outcome.hits += group - 1;
      ++outcome.misses;
      if (way->valid) {
        ++stats_.evictions;
        if (way->dirty) ++stats_.dirtyEvictions;
      }
      way->tag = config_.tagOf(addr);
      way->valid = true;
      way->dirty = false;
    }
    way->dirty |= isWrite;
    way->lastUse = useClock_;
    addr += static_cast<std::uint64_t>(strideBytes * group);
    count -= group;
  }
  return outcome;
}

void SetAssocCache::bulkHits(std::int64_t count) {
  stats_.accesses += static_cast<std::uint64_t>(count);
  stats_.hits += static_cast<std::uint64_t>(count);
  useClock_ += static_cast<std::uint64_t>(count);
}

void SetAssocCache::touch(std::uint64_t addr, bool isWrite,
                          std::uint64_t lastUseStamp) {
  if (Way* way = lookup(addr, nullptr)) {
    way->lastUse = std::max(way->lastUse, lastUseStamp);
    way->dirty |= isWrite;
    return;
  }
  check(false, "SetAssocCache::touch: line not resident");
}

void SetAssocCache::flush() {
  for (Way& way : ways_) {
    if (way.valid) {
      ++stats_.invalidations;
      if (way.dirty) ++stats_.dirtyEvictions;
    }
    way = Way{};
  }
}

bool SetAssocCache::invalidateLine(std::uint64_t addr) {
  if (Way* way = lookup(addr, nullptr)) {
    ++stats_.invalidations;
    const bool dirty = way->dirty;
    if (dirty) ++stats_.dirtyEvictions;
    *way = Way{};
    return dirty;
  }
  return false;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::int64_t set = config_.setIndexOf(addr);
  const std::uint64_t tag = config_.tagOf(addr);
  const std::size_t base = static_cast<std::size_t>(set * config_.assoc);
  for (std::size_t w = base; w < base + static_cast<std::size_t>(config_.assoc);
       ++w) {
    if (ways_[w].valid && ways_[w].tag == tag) return true;
  }
  return false;
}

std::int64_t SetAssocCache::residentLines() const {
  std::int64_t count = 0;
  for (const Way& way : ways_) {
    if (way.valid) ++count;
  }
  return count;
}

std::vector<std::uint64_t> SetAssocCache::residentLineAddrs() const {
  std::vector<std::uint64_t> addrs;
  const auto numSets = static_cast<std::uint64_t>(config_.numSets());
  const auto assoc = static_cast<std::size_t>(config_.assoc);
  for (std::size_t w = 0; w < ways_.size(); ++w) {
    if (!ways_[w].valid) continue;
    const std::uint64_t set = static_cast<std::uint64_t>(w / assoc);
    addrs.push_back((ways_[w].tag * numSets + set) *
                    static_cast<std::uint64_t>(config_.lineBytes));
  }
  return addrs;
}

}  // namespace laps

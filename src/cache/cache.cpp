#include "cache/cache.h"

#include "util/error.h"

namespace laps {

void CacheStats::accumulate(const CacheStats& other) {
  accesses += other.accesses;
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  dirtyEvictions += other.dirtyEvictions;
  invalidations += other.invalidations;
}

SetAssocCache::SetAssocCache(CacheConfig config) : config_(config) {
  config_.validate();
  ways_.resize(static_cast<std::size_t>(config_.numSets() * config_.assoc));
}

AccessOutcome SetAssocCache::access(std::uint64_t addr, bool isWrite) {
  ++stats_.accesses;
  ++useClock_;
  const std::int64_t set = config_.setIndexOf(addr);
  const std::uint64_t tag = config_.tagOf(addr);
  const std::size_t base = static_cast<std::size_t>(set * config_.assoc);
  const std::size_t assoc = static_cast<std::size_t>(config_.assoc);

  std::size_t victim = base;
  for (std::size_t w = base; w < base + assoc; ++w) {
    Way& way = ways_[w];
    if (way.valid && way.tag == tag) {
      way.lastUse = useClock_;
      way.dirty |= isWrite;
      ++stats_.hits;
      return AccessOutcome::Hit;
    }
    // Track the LRU (or first invalid) way as the victim candidate.
    if (!ways_[victim].valid) {
      continue;  // already found an invalid slot
    }
    if (!way.valid || way.lastUse < ways_[victim].lastUse) {
      victim = w;
    }
  }

  ++stats_.misses;
  Way& way = ways_[victim];
  if (way.valid) {
    ++stats_.evictions;
    if (way.dirty) ++stats_.dirtyEvictions;
  }
  way.tag = tag;
  way.valid = true;
  way.dirty = isWrite;  // write-allocate
  way.lastUse = useClock_;
  return AccessOutcome::Miss;
}

void SetAssocCache::flush() {
  for (Way& way : ways_) {
    if (way.valid) {
      ++stats_.invalidations;
      if (way.dirty) ++stats_.dirtyEvictions;
    }
    way = Way{};
  }
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::int64_t set = config_.setIndexOf(addr);
  const std::uint64_t tag = config_.tagOf(addr);
  const std::size_t base = static_cast<std::size_t>(set * config_.assoc);
  for (std::size_t w = base; w < base + static_cast<std::size_t>(config_.assoc);
       ++w) {
    if (ways_[w].valid && ways_[w].tag == tag) return true;
  }
  return false;
}

std::int64_t SetAssocCache::residentLines() const {
  std::int64_t count = 0;
  for (const Way& way : ways_) {
    if (way.valid) ++count;
  }
  return count;
}

}  // namespace laps

#pragma once
/// \file bus.h
/// \brief Off-chip bus model: bounded outstanding transactions with
/// queueing delay.
///
/// The paper's platform charges a fixed 75-cycle off-chip latency per
/// miss, independent of what the other cores are doing. MemoryBus
/// replaces that constant with a contended resource: at most
/// BusConfig::maxOutstanding transactions are in flight at any cycle,
/// each occupying its slot for the DRAM latency plus the line transfer
/// time, and a request issued while every slot is busy queues until one
/// frees. A miss's latency therefore depends on the other cores' miss
/// traffic — the effect the contention-aware scheduling ablations
/// measure.
///
/// The simulator executes one scheduling segment at a time, so requests
/// arrive with absolute cycle stamps that are monotone within a segment
/// but not across segments (a long segment is simulated to completion
/// before a concurrent one that started later in wall order). Each slot
/// therefore keeps a *calendar* of busy intervals (BusyTimeline) and a
/// request books the earliest gap at or after its issue cycle — a
/// later-simulated request slots into the past gaps a far-ahead segment
/// left open, instead of queueing behind reservations made for its
/// future. Adjacent intervals coalesce, so under saturation a timeline
/// is a handful of blobs; retireBefore() prunes intervals no future
/// request can reach.

#include <cstdint>
#include <map>
#include <vector>

namespace laps {

/// Off-chip bus configuration. Disabled (see MpsocConfig) the platform
/// keeps the paper's fixed memory latency.
struct BusConfig {
  std::int64_t maxOutstanding = 2;  ///< transactions in flight at once
  std::int64_t widthBytes = 8;      ///< data width (transfer = line/width)
  std::int64_t latencyCycles = 75;  ///< DRAM access latency per transaction

  /// Slot occupancy of one transaction moving \p lineBytes.
  [[nodiscard]] std::int64_t occupancyCycles(std::int64_t lineBytes) const;

  /// Throws laps::Error when a field is non-positive.
  void validate() const;
};

/// Counters accumulated by the bus.
struct BusStats {
  std::uint64_t transactions = 0;  ///< demand fills + posted write-backs
  std::uint64_t waitCycles = 0;    ///< summed queueing delay (demand only)
};

namespace audit {
/// Audit checker (docs/ARCHITECTURE.md §11): a busy calendar must hold
/// strictly ordered, non-overlapping, coalesced intervals with positive
/// extent — overlap would mean two transactions occupy one resource
/// slot at once and every latency derived from the calendar is wrong.
/// Throws laps::AuditError on violation. BusyTimeline runs it on its
/// own map after every booking under LAPSCHED_AUDIT; tests call it
/// directly with violating interval sets to prove it fires.
void timelineDisjoint(const std::map<std::int64_t, std::int64_t>& busy);
}  // namespace audit

/// Calendar of busy intervals of one resource (a bus slot or an L2
/// bank). Intervals are disjoint and coalesced; reserve() books the
/// earliest gap at or after the request cycle.
class BusyTimeline {
 public:
  /// Books \p duration cycles at the earliest feasible start >= \p now;
  /// returns the booked start cycle (== now when the resource is free).
  std::int64_t reserve(std::int64_t now, std::int64_t duration);

  /// Earliest feasible start >= \p now for \p duration cycles, without
  /// booking.
  [[nodiscard]] std::int64_t earliestStart(std::int64_t now,
                                           std::int64_t duration) const;

  /// Books \p duration cycles at \p start, which the caller obtained
  /// from earliestStart() with no intervening mutation (lets a
  /// multi-slot owner compare candidate starts without re-running the
  /// gap search on the winner).
  void bookAt(std::int64_t start, std::int64_t duration);

  /// Drops intervals ending at or before \p cycle. Safe once no future
  /// request can be issued before \p cycle.
  void retireBefore(std::int64_t cycle);

  /// Booked intervals currently retained (tests and diagnostics).
  [[nodiscard]] std::size_t intervalCount() const { return busy_.size(); }

  /// Audit test hook: inserts a raw interval bypassing the coalescing
  /// and gap-search invariant maintenance, so a subsequent audited
  /// booking can prove the timelineDisjoint check fires. Never called
  /// by model code.
  void auditInjectIntervalForTest(std::int64_t start, std::int64_t end) {
    busy_[start] = end;
  }

 private:
  std::map<std::int64_t, std::int64_t> busy_;  ///< start -> end, disjoint
};

/// The bounded off-chip bus: maxOutstanding parallel slots, each a
/// BusyTimeline.
class MemoryBus {
 public:
  explicit MemoryBus(const BusConfig& config, std::int64_t lineBytes);

  /// One demand transaction (miss fill) issued at \p now. Books the
  /// best slot and returns the total latency: queueing wait + DRAM
  /// latency + line transfer.
  std::int64_t demandAccess(std::int64_t now);

  /// One posted transaction (write-back) issued at \p now: occupies a
  /// slot — delaying later demand traffic — but the requester does not
  /// stall, so no latency is returned or accounted as wait.
  void postedAccess(std::int64_t now);

  /// Prunes every slot's calendar (see BusyTimeline::retireBefore).
  void retireBefore(std::int64_t cycle);

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  void resetStats() { stats_ = BusStats{}; }

  [[nodiscard]] const BusConfig& config() const { return config_; }

 private:
  /// Books the slot with the earliest feasible start; returns that start.
  std::int64_t reserveBestSlot(std::int64_t now);

  BusConfig config_;
  std::int64_t occupancyCycles_;
  std::vector<BusyTimeline> slots_;
  BusStats stats_;
};

}  // namespace laps

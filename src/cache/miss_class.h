#pragma once
/// \file miss_class.h
/// \brief Compulsory / capacity / conflict miss classification.
///
/// The paper's two techniques attack different miss classes: scheduling
/// by data reuse removes capacity/compulsory-adjacent misses (data is
/// already on chip), while the Fig. 4 re-layout removes conflict misses.
/// This classifier lets tests and benchmarks verify that each mechanism
/// moves the class it is supposed to move.
///
/// Classification follows the standard 3C model:
///  * compulsory — the line was never referenced before;
///  * capacity  — a fully-associative LRU cache of equal capacity would
///                also have missed;
///  * conflict  — the fully-associative shadow cache would have hit, so
///                the miss is due to limited associativity / indexing.

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "cache/config.h"

namespace laps {

enum class MissKind : std::uint8_t { Compulsory, Capacity, Conflict };

/// Per-class miss counters.
struct MissBreakdown {
  std::uint64_t compulsory = 0;
  std::uint64_t capacity = 0;
  std::uint64_t conflict = 0;

  [[nodiscard]] std::uint64_t total() const {
    return compulsory + capacity + conflict;
  }
  void accumulate(const MissBreakdown& other) {
    compulsory += other.compulsory;
    capacity += other.capacity;
    conflict += other.conflict;
  }
};

/// Classifies the misses of a set-associative cache by replaying the same
/// reference stream against a fully-associative LRU shadow of equal
/// capacity. Feed it every access, hit or miss.
class MissClassifier {
 public:
  explicit MissClassifier(const CacheConfig& config);

  /// Records one access. \p realMiss says whether the modeled cache
  /// missed. Returns the miss class when realMiss is true.
  std::optional<MissKind> record(std::uint64_t addr, bool realMiss);

  /// Clears the shadow cache (mirror of SetAssocCache::flush). The
  /// ever-seen set is kept: compulsory means "first access ever".
  void flushShadow();

  [[nodiscard]] const MissBreakdown& breakdown() const { return breakdown_; }
  void resetStats() { breakdown_ = MissBreakdown{}; }

 private:
  /// Accesses the fully-associative shadow; returns true on shadow hit.
  bool shadowAccess(std::uint64_t line);

  std::int64_t lineBytes_;
  std::size_t capacityLines_;
  MissBreakdown breakdown_;
  /// Both hash containers are lookup-only (contains / find / erase by
  /// key — never iterated): recency order lives entirely in lru_, so
  /// hash order cannot reach the classification. Order-insensitivity is
  /// pinned against an ordered-container oracle by
  /// OrderedOracleAgreement in tests/cache/miss_class_test.cpp.
  // LINT-ALLOW(unordered-container): contains-only ever-seen set, never iterated; oracle-tested
  std::unordered_set<std::uint64_t> everSeen_;
  std::list<std::uint64_t> lru_;  // front = most recent
  // LINT-ALLOW(unordered-container): find/erase by key only, order lives in lru_; oracle-tested
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> where_;
};

}  // namespace laps

/// \file bench_fig6_isolated.cpp
/// \brief Regenerates paper Figure 6: execution times of the six
/// applications under RS, RRS, LS and LSM when each runs in isolation on
/// the Table 2 platform (8 cores, 8 KB 2-way L1s, 75-cycle memory).
///
/// Expected shape (paper §4): LS and LSM clearly beat RS and RRS for
/// every application, and LS ≈ LSM (processes of one application share
/// data, so conflicts — LSM's target — are secondary).
///
/// With --csv the same data is emitted as CSV, which
/// bench/baselines/check_shapes.py consumes to flag paper-shape
/// violations and drift against the committed baselines.

#include <cstring>
#include <iostream>

#include "core/laps.h"

namespace {

void printFigure6(const laps::AppParams& params, bool csv) {
  using namespace laps;

  const auto suite = standardSuite(params);
  const auto kinds = paperSchedulers();
  ExperimentConfig config;  // Table 2 defaults
  // Bit-identical to per-event replay (tests/sim/replay_test.cpp), faster.
  config.mpsoc.replayMode = ReplayMode::RunLength;

  Table table({"Application", "RS (ms)", "RRS (ms)", "LS (ms)", "LSM (ms)",
               "LS vs RS %", "LS vs RRS %", "LSM vs LS %"});
  Table misses({"Application", "RS misses", "RRS misses", "LS misses",
                "LSM misses", "LS missrate", "LSM missrate"});

  if (csv) {
    std::cout.precision(12);
    std::cout << "app,scheduler,makespan_cycles,seconds,dcache_misses,"
                 "dcache_accesses\n";
  }

  for (const auto& app : suite) {
    const auto results = compareSchedulers(app.workload, kinds, config);
    if (csv) {
      for (const auto& r : results) {
        std::cout << app.name << ',' << r.schedulerName << ','
                  << r.sim.makespanCycles << ',' << r.sim.seconds << ','
                  << r.sim.dcacheTotal.misses << ','
                  << r.sim.dcacheTotal.accesses << '\n';
      }
      continue;
    }
    const double rs = results[0].sim.seconds * 1e3;
    const double rrs = results[1].sim.seconds * 1e3;
    const double ls = results[2].sim.seconds * 1e3;
    const double lsm = results[3].sim.seconds * 1e3;
    table.row()
        .cell(app.name)
        .cell(rs, 3)
        .cell(rrs, 3)
        .cell(ls, 3)
        .cell(lsm, 3)
        .cell(percentImprovement(rs, ls), 1)
        .cell(percentImprovement(rrs, ls), 1)
        .cell(percentImprovement(ls, lsm), 1);
    misses.row()
        .cell(app.name)
        .cell(results[0].sim.dcacheTotal.misses)
        .cell(results[1].sim.dcacheTotal.misses)
        .cell(results[2].sim.dcacheTotal.misses)
        .cell(results[3].sim.dcacheTotal.misses)
        .cell(results[2].sim.dataMissRate(), 4)
        .cell(results[3].sim.dataMissRate(), 4);
  }

  if (!csv) {
    std::cout
        << "=== Figure 6: isolated execution times (Table 2 platform) ===\n"
        << table.ascii() << '\n'
        << "--- supporting detail: data-cache misses ---\n"
        << misses.ascii() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_fig6_isolated [--csv]\n";
      return 2;
    }
  }
  printFigure6(laps::AppParams{}, csv);
  return 0;
}

#pragma once
/// \file synthetic_overhead.h
/// \brief Shared synthetic instances for the policy-overhead benches.
///
/// The scheduler-overhead measurements (bench_policy_overhead and the
/// large-|T| BM_LocalityPlan rows of bench_micro) need instances whose
/// size can be dialed to thousands of processes without paying trace
/// generation or cache simulation. Two deterministic generators:
///
///  * a layered DAG of fixed width (process i depends on i - width) —
///    the root layer stays `width` wide, so the Fig. 3 initial round
///    trims a bounded candidate set while the greedy rounds still walk
///    every process;
///  * a banded sharing matrix: processes whose ids fall in the same
///    band share a synthetic (id-derived, integer) element count, so
///    the greedy argmax has real structure to chase instead of a
///    constant row.
///
/// Everything is a pure function of (n, width/band): no clocks, no
/// randomness — the same inputs produce byte-identical instances, which
/// is what lets bench_policy_overhead commit dispatch checksums as a
/// baseline.

#include <string>

#include "region/sharing.h"
#include "taskgraph/graph.h"

namespace laps::synth {

/// Layered DAG: n empty-trace processes, process i depending on
/// i - width (so every layer has exactly \p width independents).
inline Workload makeLayeredWorkload(std::size_t n, std::size_t width) {
  Workload workload;
  for (std::size_t i = 0; i < n; ++i) {
    ProcessSpec spec;
    spec.task = static_cast<TaskId>(i / width);
    spec.name = "synth" + std::to_string(i);
    workload.graph.addProcess(std::move(spec));
  }
  for (std::size_t i = width; i < n; ++i) {
    workload.graph.addDependence(static_cast<ProcessId>(i - width),
                                 static_cast<ProcessId>(i));
  }
  return workload;
}

/// Banded sharing: processes p and q share iff they sit in the same
/// \p band -sized id block; the shared count is a small id-derived
/// integer (never zero), so ties are rare and the argmax is exercised.
inline SharingMatrix makeBandedSharing(std::size_t n, std::size_t band) {
  SharingMatrix sharing(n);
  for (std::size_t p = 0; p < n; ++p) {
    sharing.set(p, p, 64);  // own footprint
    const std::size_t lo = (p / band) * band;
    for (std::size_t q = lo; q < p; ++q) {
      const std::int64_t shared =
          static_cast<std::int64_t>((p * 7 + q * 3) % 97) + 1;
      sharing.set(p, q, shared);
      sharing.set(q, p, shared);
    }
  }
  return sharing;
}

}  // namespace laps::synth

/// \file bench_fig7_concurrent.cpp
/// \brief Regenerates paper Figure 7: overall completion time when |T|
/// applications run concurrently (|T| = 1: Med-Im04; |T| = 2: + MxM; ...
/// up to all six), under RS, RRS, LS and LSM on the Table 2 platform.
///
/// Expected shape (paper §4): execution time grows with |T|; LS/LSM beat
/// RS/RRS throughout; and — unlike the isolated case — the LS-to-LSM gap
/// widens with |T|, because processes of different applications share no
/// data and conflict in the cache instead, which only the data re-layout
/// (LSM) removes.
///
/// Modes:
///   (none)      the paper's |T| = 1..6 tables;
///   --csv       the same data as CSV (bench/baselines/check_shapes.py
///               consumes this to flag paper-shape violations and drift
///               against the committed baselines);
///   --sweep [N] the large-|T| extension: mixes cycle through the suite
///               up to N applications (default 24 = 660 processes),
///               replayed run-length-encoded, then the largest mix is
///               re-run per-event to log the measured speedup and verify
///               the two replay modes still agree bit-for-bit.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/laps.h"
#include "util/parallel.h"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void printFigure7(const laps::AppParams& params, bool csv) {
  using namespace laps;

  const auto suite = standardSuite(params);
  const auto kinds = paperSchedulers();
  ExperimentConfig config;  // Table 2 defaults
  config.mpsoc.memory.classifyMisses = true;
  // Run-length replay is bit-identical to per-event replay
  // (tests/sim/replay_test.cpp) and several times faster.
  config.mpsoc.replayMode = ReplayMode::RunLength;

  Table table({"|T|", "RS (ms)", "RRS (ms)", "LS (ms)", "LSM (ms)",
               "LS vs RS %", "LSM vs LS %"});
  Table detail({"|T|", "LS conflictM", "LSM conflictM", "LSM relayouts",
                "RS misses", "RRS misses", "LS misses", "LSM misses"});

  if (csv) {
    std::cout.precision(12);
    std::cout << "t,scheduler,processes,makespan_cycles,seconds,"
                 "dcache_misses,conflict_misses,relayouted_arrays\n";
  }

  // The |T| points are independent experiments: fan them out over the
  // pool and emit in order, so the CSV stays byte-exact with the serial
  // loop at any thread count.
  std::vector<Workload> mixes;
  mixes.reserve(suite.size());
  for (std::size_t t = 1; t <= suite.size(); ++t) {
    mixes.push_back(concurrentScenario(suite, t));
  }
  const auto allResults = parallelMap<std::vector<ExperimentResult>>(
      mixes.size(), [&](std::size_t i) {
        return compareSchedulers(mixes[i], kinds, config);
      });

  for (std::size_t t = 1; t <= suite.size(); ++t) {
    const Workload& mix = mixes[t - 1];
    const auto& results = allResults[t - 1];
    if (csv) {
      for (const auto& r : results) {
        std::cout << t << ',' << r.schedulerName << ','
                  << mix.graph.processCount() << ',' << r.sim.makespanCycles
                  << ',' << r.sim.seconds << ',' << r.sim.dcacheTotal.misses
                  << ',' << r.sim.dataMisses.conflict << ','
                  << r.relayoutedArrays << '\n';
      }
      continue;
    }
    const double rs = results[0].sim.seconds * 1e3;
    const double rrs = results[1].sim.seconds * 1e3;
    const double ls = results[2].sim.seconds * 1e3;
    const double lsm = results[3].sim.seconds * 1e3;
    table.row()
        .cell("|T|=" + std::to_string(t))
        .cell(rs, 3)
        .cell(rrs, 3)
        .cell(ls, 3)
        .cell(lsm, 3)
        .cell(percentImprovement(rs, ls), 1)
        .cell(percentImprovement(ls, lsm), 1);
    detail.row()
        .cell("|T|=" + std::to_string(t))
        .cell(results[2].sim.dataMisses.conflict)
        .cell(results[3].sim.dataMisses.conflict)
        .cell(results[3].relayoutedArrays)
        .cell(results[0].sim.dcacheTotal.misses)
        .cell(results[1].sim.dcacheTotal.misses)
        .cell(results[2].sim.dcacheTotal.misses)
        .cell(results[3].sim.dcacheTotal.misses);
  }

  if (!csv) {
    std::cout
        << "=== Figure 7: concurrent execution times (Table 2 platform) ===\n"
        << table.ascii() << '\n'
        << "--- supporting detail: conflict misses and re-layout ---\n"
        << detail.ascii() << '\n';
  }
}

/// The large-|T| sweep: what run-length replay buys. Mixes cycle through
/// the suite (independent application instances), pushing the resident
/// process count into the hundreds.
void sweepLargeT(const laps::AppParams& params, std::size_t maxApps) {
  using namespace laps;

  const auto suite = standardSuite(params);
  const auto kinds = paperSchedulers();
  ExperimentConfig config;
  // Classification's shadow LRU dominates runtime at this scale and the
  // paper-shape detail is covered by the |T| <= 6 tables; keep the sweep
  // about completion times.
  config.mpsoc.replayMode = ReplayMode::RunLength;

  // One full-suite step per row, and always a row at maxApps itself so
  // the shoot-out below matches a tabulated mix.
  std::vector<std::size_t> points;
  for (std::size_t t = std::min(suite.size(), maxApps); t < maxApps;
       t += suite.size()) {
    points.push_back(t);
  }
  points.push_back(maxApps);

  // Each |T| point is independent; fan the points out over the pool and
  // tabulate in order. The per-row wall clock is the row's own
  // busy time (rows share the machine while running concurrently, so it
  // is a throughput figure, not an isolated latency).
  struct SweepRow {
    std::vector<laps::ExperimentResult> results;
    std::size_t processes = 0;
    double wallMs = 0.0;
  };
  const auto totalStart = Clock::now();
  const auto rows = parallelMap<SweepRow>(points.size(), [&](std::size_t i) {
    const Workload mix = concurrentScenario(suite, points[i]);
    const auto start = Clock::now();
    SweepRow row;
    row.results = compareSchedulers(mix, kinds, config);
    row.wallMs = msSince(start);
    row.processes = mix.graph.processCount();
    return row;
  });
  const double totalWall = msSince(totalStart);

  Table table({"|T|", "processes", "RS (ms)", "RRS (ms)", "LS (ms)",
               "LSM (ms)", "sim wall (ms)"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepRow& row = rows[i];
    table.row()
        .cell("|T|=" + std::to_string(points[i]))
        .cell(row.processes)
        .cell(row.results[0].sim.seconds * 1e3, 3)
        .cell(row.results[1].sim.seconds * 1e3, 3)
        .cell(row.results[2].sim.seconds * 1e3, 3)
        .cell(row.results[3].sim.seconds * 1e3, 3)
        .cell(row.wallMs, 0);
  }
  std::cout << "=== Figure 7 extension: large concurrent mixes "
               "(run-length replay, " << parallelThreadCount()
            << " analysis/sweep threads, total wall "
            << static_cast<std::int64_t>(totalWall) << " ms) ===\n"
            << table.ascii() << '\n';

  // Replay-mode shoot-out at the largest mix: per-event vs run-length on
  // the simulator proper (the footprint/sharing analysis is identical in
  // both modes, so it is computed once up front), with a bit-identity
  // cross-check. FCFS exercises the bulk paths, RRS the quantum-aware
  // mid-run splitting.
  const Workload mix = concurrentScenario(suite, maxApps);
  const SharingMatrix sharing = SharingMatrix::compute(mix.footprints());
  const AddressSpace space(mix.arrays);
  for (const bool preemptive : {false, true}) {
    SimResult results[2];
    double wall[2];
    for (int mode = 0; mode < 2; ++mode) {
      MpsocConfig mpsoc = config.mpsoc;
      mpsoc.replayMode = mode == 0 ? ReplayMode::PerEvent
                                   : ReplayMode::RunLength;
      FcfsScheduler fcfs;
      RoundRobinScheduler rrs(config.sched.rrsQuantumCycles);
      SchedulerPolicy& policy =
          preemptive ? static_cast<SchedulerPolicy&>(rrs) : fcfs;
      const auto start = Clock::now();
      MpsocSimulator sim(mix, space, sharing, policy, mpsoc);
      results[mode] = sim.run();
      wall[mode] = msSince(start);
    }
    if (results[0].makespanCycles != results[1].makespanCycles ||
        results[0].dcacheTotal.misses != results[1].dcacheTotal.misses ||
        results[0].preemptions != results[1].preemptions) {
      std::cerr << "FATAL: replay modes diverged ("
                << (preemptive ? "RRS" : "FCFS") << ")\n";
      std::exit(1);
    }
    std::cout << "--- replay-mode shoot-out at |T|=" << maxApps << " ("
              << mix.graph.processCount() << " processes, "
              << (preemptive ? "RRS" : "FCFS") << ", "
              << results[0].dcacheTotal.accesses << " data refs) ---\n"
              << "per-event:  " << wall[0] << " ms\n"
              << "run-length: " << wall[1] << " ms  (speedup "
              << wall[0] / wall[1] << "x, results bit-identical)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  std::size_t sweep = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--sweep") {
      sweep = 24;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        char* end = nullptr;
        const long n = std::strtol(argv[++i], &end, 10);
        if (end == nullptr || *end != '\0' || n < 1) {
          std::cerr << "bench_fig7_concurrent: --sweep needs a positive "
                       "application count, got '"
                    << argv[i] << "'\n";
          return 2;
        }
        sweep = static_cast<std::size_t>(n);
      }
    } else {
      std::cerr << "usage: bench_fig7_concurrent [--csv | --sweep [N]]\n";
      return 2;
    }
  }
  if (sweep > 0) {
    sweepLargeT(laps::AppParams{}, sweep);
  } else {
    printFigure7(laps::AppParams{}, csv);
  }
  return 0;
}

/// \file bench_fig7_concurrent.cpp
/// \brief Regenerates paper Figure 7: overall completion time when |T|
/// applications run concurrently (|T| = 1: Med-Im04; |T| = 2: + MxM; ...
/// up to all six), under RS, RRS, LS and LSM on the Table 2 platform.
///
/// Expected shape (paper §4): execution time grows with |T|; LS/LSM beat
/// RS/RRS throughout; and — unlike the isolated case — the LS-to-LSM gap
/// widens with |T|, because processes of different applications share no
/// data and conflict in the cache instead, which only the data re-layout
/// (LSM) removes.

#include <iostream>

#include "core/laps.h"

namespace {

void printFigure7(const laps::AppParams& params) {
  using namespace laps;

  const auto suite = standardSuite(params);
  const auto kinds = paperSchedulers();
  ExperimentConfig config;  // Table 2 defaults
  config.mpsoc.memory.classifyMisses = true;

  Table table({"|T|", "RS (ms)", "RRS (ms)", "LS (ms)", "LSM (ms)",
               "LS vs RS %", "LSM vs LS %"});
  Table detail({"|T|", "LS conflictM", "LSM conflictM", "LSM relayouts",
                "RS misses", "RRS misses", "LS misses", "LSM misses"});

  for (std::size_t t = 1; t <= suite.size(); ++t) {
    const Workload mix = concurrentScenario(suite, t);
    const auto results = compareSchedulers(mix, kinds, config);
    const double rs = results[0].sim.seconds * 1e3;
    const double rrs = results[1].sim.seconds * 1e3;
    const double ls = results[2].sim.seconds * 1e3;
    const double lsm = results[3].sim.seconds * 1e3;
    table.row()
        .cell("|T|=" + std::to_string(t))
        .cell(rs, 3)
        .cell(rrs, 3)
        .cell(ls, 3)
        .cell(lsm, 3)
        .cell(percentImprovement(rs, ls), 1)
        .cell(percentImprovement(ls, lsm), 1);
    detail.row()
        .cell("|T|=" + std::to_string(t))
        .cell(results[2].sim.dataMisses.conflict)
        .cell(results[3].sim.dataMisses.conflict)
        .cell(results[3].relayoutedArrays)
        .cell(results[0].sim.dcacheTotal.misses)
        .cell(results[1].sim.dcacheTotal.misses)
        .cell(results[2].sim.dcacheTotal.misses)
        .cell(results[3].sim.dcacheTotal.misses);
  }

  std::cout << "=== Figure 7: concurrent execution times (Table 2 platform) ===\n"
            << table.ascii() << '\n'
            << "--- supporting detail: conflict misses and re-layout ---\n"
            << detail.ascii() << '\n';
}

}  // namespace

int main() {
  printFigure7(laps::AppParams{});
  return 0;
}

/// \file bench_micro.cpp
/// \brief google-benchmark microbenchmarks of the substrates: region
/// algebra throughput (footprints, sharing matrices), cache model
/// access rate, trace generation, and full simulation throughput.
///
/// These guard the performance of the analysis path (the paper's
/// scheduler runs inside an OS, so the sharing analysis must be cheap)
/// and of the simulator (the benches sweep dozens of configurations).

#include <benchmark/benchmark.h>

#include "core/laps.h"
#include "synthetic_overhead.h"

namespace {

using namespace laps;

void BM_IntervalSetIntersect(benchmark::State& state) {
  const auto pieces = static_cast<std::int64_t>(state.range(0));
  IntervalSet::Builder ba;
  IntervalSet::Builder bb;
  for (std::int64_t i = 0; i < pieces; ++i) {
    ba.add(i * 100, i * 100 + 60);
    bb.add(i * 100 + 40, i * 100 + 90);
  }
  const IntervalSet a = ba.build();
  const IntervalSet b = bb.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersectCardinality(b));
  }
  state.SetItemsProcessed(state.iterations() * pieces);
}
BENCHMARK(BM_IntervalSetIntersect)->Arg(64)->Arg(1024)->Arg(16384);

void BM_IntervalSetIntersectSkewed(benchmark::State& state) {
  // One side is a handful of wide intervals, the other is tens of
  // thousands of fragments: the shape where a galloping advance beats
  // the element-wise merge.
  const auto pieces = static_cast<std::int64_t>(state.range(0));
  IntervalSet::Builder ba;
  IntervalSet::Builder bb;
  for (std::int64_t i = 0; i < 16; ++i) {
    ba.add(i * pieces * 8, i * pieces * 8 + 50);
  }
  for (std::int64_t i = 0; i < pieces; ++i) {
    bb.add(i * 100, i * 100 + 60);
  }
  const IntervalSet a = ba.build();
  const IntervalSet b = bb.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.intersectCardinality(b));
    benchmark::DoNotOptimize(b.intersectCardinality(a));
  }
  state.SetItemsProcessed(state.iterations() * pieces);
}
BENCHMARK(BM_IntervalSetIntersectSkewed)->Arg(4096)->Arg(65536);

void BM_IntervalSetSubtractSkewed(benchmark::State& state) {
  // Sparse minuend, densely fragmented subtrahend: most cutter pieces
  // fall in the gaps and should be skipped, not scanned.
  const auto pieces = static_cast<std::int64_t>(state.range(0));
  IntervalSet::Builder ba;
  IntervalSet::Builder bb;
  for (std::int64_t i = 0; i < 16; ++i) {
    ba.add(i * pieces * 8, i * pieces * 8 + 50);
  }
  for (std::int64_t i = 0; i < pieces; ++i) {
    bb.add(i * 100, i * 100 + 60);
  }
  const IntervalSet a = ba.build();
  const IntervalSet b = bb.build();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subtract(b));
  }
  state.SetItemsProcessed(state.iterations() * pieces);
}
BENCHMARK(BM_IntervalSetSubtractSkewed)->Arg(4096)->Arg(65536);

void BM_FootprintProg1(benchmark::State& state) {
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {10000, 16}, 4);
  const ArrayAccess access{
      a, AffineMap{AffineExpr({1000, 1}, 0), AffineExpr::constant(5)},
      AccessKind::Read};
  const auto space = IterationSpace::box({{0, 8}, {0, 3000}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(accessFootprint(space, access, arrays.at(a)));
  }
}
BENCHMARK(BM_FootprintProg1);

void BM_FootprintStridedLarge(benchmark::State& state) {
  // A larger strided shape (64k points in stride-32 runs): the
  // enumeration cost the strided fast path attacks.
  ArrayTable arrays;
  const ArrayId a = arrays.add("A", {16384, 32}, 4);
  const ArrayAccess access{
      a, AffineMap{AffineExpr({512, 1}, 0), AffineExpr::constant(5)},
      AccessKind::Read};
  const auto space = IterationSpace::box({{0, 32}, {0, 2048}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(accessFootprint(space, access, arrays.at(a)));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 2048);
}
BENCHMARK(BM_FootprintStridedLarge);

void BM_SharingMatrixSuite(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, count);
  const auto footprints = mix.footprints();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SharingMatrix::compute(footprints));
  }
  state.SetLabel(std::to_string(mix.graph.processCount()) + " processes");
}
// Arg(12)/Arg(24) cover the hundreds-of-processes mixes the run-length
// replay of PR 2 unlocked (|T|=24 is 660 processes, ~217k pair
// intersections per compute).
BENCHMARK(BM_SharingMatrixSuite)->Arg(1)->Arg(3)->Arg(6)->Arg(12)->Arg(24);

void BM_SharingMatrixIncremental(benchmark::State& state) {
  // One open-workload arrival event at steady state: removeProcess +
  // addProcess of a single row against |T| resident applications. The
  // comparison point is BM_SharingMatrixSuite at the same Arg — a full
  // recompute per event; the incremental path must beat it by >= 5x at
  // Arg(24) (it touches O(n) pairs instead of O(n^2)).
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, count);
  const auto footprints = mix.footprints();
  SharingMatrix m = SharingMatrix::compute(footprints);
  const std::size_t p = footprints.size() / 2;
  for (auto _ : state) {
    m.removeProcess(p);
    m.addProcess(footprints, p);
    benchmark::DoNotOptimize(m.at(p, p));
  }
  state.SetLabel(std::to_string(mix.graph.processCount()) + " processes");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(footprints.size()));
}
BENCHMARK(BM_SharingMatrixIncremental)->Arg(12)->Arg(24);

void BM_WorkloadFootprints(benchmark::State& state) {
  // Per-process footprint construction over a concurrent mix — the
  // other half of the analysis pipeline next to SharingMatrix::compute.
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, count);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.footprints());
  }
  state.SetLabel(std::to_string(mix.graph.processCount()) + " processes");
}
BENCHMARK(BM_WorkloadFootprints)->Arg(6)->Arg(24);

void BM_CacheAccess(benchmark::State& state) {
  SetAssocCache cache(CacheConfig{});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    addr = (addr * 2654435761u + 97) & 0xFFFFF;
    benchmark::DoNotOptimize(cache.access(addr, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_TraceGeneration(benchmark::State& state) {
  const Application app = makeMxM();
  const AddressSpace space(app.workload.arrays);
  const ProcessSpec& proc = app.workload.graph.process(5);
  for (auto _ : state) {
    ProcessTraceCursor cursor(proc, app.workload.arrays, space);
    TraceStep step;
    std::uint64_t steps = 0;
    while (cursor.next(step)) ++steps;
    benchmark::DoNotOptimize(steps);
    state.SetItemsProcessed(static_cast<std::int64_t>(steps) +
                            state.items_processed());
  }
}
BENCHMARK(BM_TraceGeneration);

void BM_FullSimulationShape(benchmark::State& state) {
  const Application app = makeShape();
  for (auto _ : state) {
    const auto r = runExperiment(app.workload, SchedulerKind::Locality, {});
    benchmark::DoNotOptimize(r.sim.makespanCycles);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(r.sim.dcacheTotal.accesses) +
        state.items_processed());
  }
}
BENCHMARK(BM_FullSimulationShape);

void BM_LocalityPlan(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, count);
  const auto footprints = mix.footprints();
  const SharingMatrix sharing = SharingMatrix::compute(footprints);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildLocalityPlan(mix.graph, sharing, 8));
  }
  state.SetLabel(std::to_string(mix.graph.processCount()) + " processes");
}
BENCHMARK(BM_LocalityPlan)->Arg(1)->Arg(6)->Arg(12)->Arg(24);

// The pre-index Fig. 3 loops on the same instances: the merge script
// derives vs_legacy_speedup from each (BM_LocalityPlanLegacy,
// BM_LocalityPlan) pair, and check_bench_regression gates it.
void BM_LocalityPlanLegacy(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, count);
  const auto footprints = mix.footprints();
  const SharingMatrix sharing = SharingMatrix::compute(footprints);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildLocalityPlanLegacy(mix.graph, sharing, 8));
  }
  state.SetLabel(std::to_string(mix.graph.processCount()) + " processes");
}
BENCHMARK(BM_LocalityPlanLegacy)->Arg(1)->Arg(6)->Arg(12)->Arg(24);

// Large-|T| planning on the synthetic layered instance of
// bench_policy_overhead (synthetic_overhead.h): |T| in the thousands is
// where the indexed planner's complexity separates from the legacy
// O(|T|) rescans per placement.
void BM_LocalityPlanLarge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload mix = synth::makeLayeredWorkload(n, 64);
  const SharingMatrix sharing = synth::makeBandedSharing(n, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildLocalityPlan(mix.graph, sharing, 8));
  }
  state.SetLabel(std::to_string(n) + " processes, layered");
}
BENCHMARK(BM_LocalityPlanLarge)->Arg(1000)->Arg(4000);

void BM_LocalityPlanLargeLegacy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload mix = synth::makeLayeredWorkload(n, 64);
  const SharingMatrix sharing = synth::makeBandedSharing(n, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildLocalityPlanLegacy(mix.graph, sharing, 8));
  }
  state.SetLabel(std::to_string(n) + " processes, layered");
}
BENCHMARK(BM_LocalityPlanLargeLegacy)->Arg(1000)->Arg(4000);

// The fault-path overhead guard (docs §13): the same open service run
// with a FaultPlan attached whose every rate is zero — the plan is
// inert, faultsActive_ stays false, and the engine must take the exact
// fault-free code path. The merge script derives vs_faultfree_speedup
// from the (BM_OpenWorkloadFaultPathFaultFree, BM_OpenWorkloadFaultPath)
// pair; check_bench_regression gates it, so the zero-rate path drifting
// out of the fault-free noise band fails the perf gate.
void BM_OpenWorkloadFaultPath(benchmark::State& state) {
  ServiceWorkloadParams params;
  const Workload service = makeServiceWorkload(params);
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = 2000;
  config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
  config.mpsoc.arrivals->distribution = ArrivalDistribution::Exponential;
  config.mpsoc.faults.emplace();  // every mean zero: configured, inert
  for (auto _ : state) {
    const auto r = runExperiment(service, SchedulerKind::DynamicLocality, config);
    benchmark::DoNotOptimize(r.sim.makespanCycles);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(r.sim.dcacheTotal.accesses) +
        state.items_processed());
  }
}
BENCHMARK(BM_OpenWorkloadFaultPath);

void BM_OpenWorkloadFaultPathFaultFree(benchmark::State& state) {
  ServiceWorkloadParams params;
  const Workload service = makeServiceWorkload(params);
  ExperimentConfig config;
  config.mpsoc.arrivals.emplace();
  config.mpsoc.arrivals->meanInterArrivalCycles = 2000;
  config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
  config.mpsoc.arrivals->distribution = ArrivalDistribution::Exponential;
  for (auto _ : state) {
    const auto r = runExperiment(service, SchedulerKind::DynamicLocality, config);
    benchmark::DoNotOptimize(r.sim.makespanCycles);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(r.sim.dcacheTotal.accesses) +
        state.items_processed());
  }
}
BENCHMARK(BM_OpenWorkloadFaultPathFaultFree);

}  // namespace

BENCHMARK_MAIN();

/// \file bench_sweep_params.cpp
/// \brief The paper's robustness claim (§1/§4): "our savings are
/// consistent across several simulation parameters."
///
/// Sweeps cache size, associativity, off-chip latency and core count
/// around the Table 2 defaults on a 3-application concurrent mix, and
/// reports the LS-vs-RS and LSM-vs-LS improvements at every point.

#include <iostream>

#include "core/laps.h"

namespace {

using namespace laps;

void runRow(Table& table, const std::string& label, const Workload& mix,
            ExperimentConfig config) {
  const auto results = compareSchedulers(mix, paperSchedulers(), config);
  const double rs = results[0].sim.seconds * 1e3;
  const double rrs = results[1].sim.seconds * 1e3;
  const double ls = results[2].sim.seconds * 1e3;
  const double lsm = results[3].sim.seconds * 1e3;
  table.row()
      .cell(label)
      .cell(rs, 3)
      .cell(rrs, 3)
      .cell(ls, 3)
      .cell(lsm, 3)
      .cell(percentImprovement(rs, lsm), 1)
      .cell(percentImprovement(rrs, lsm), 1);
}

}  // namespace

int main() {
  using namespace laps;

  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);

  std::cout << "=== Parameter sensitivity (3-app concurrent mix) ===\n\n";

  {
    Table t({"L1 size", "RS (ms)", "RRS (ms)", "LS (ms)", "LSM (ms)",
             "LSM vs RS %", "LSM vs RRS %"});
    for (const std::int64_t kb : {4, 8, 16, 32}) {
      ExperimentConfig config;
      config.mpsoc.memory.l1d.sizeBytes = kb * 1024;
      config.mpsoc.memory.l1i.sizeBytes = kb * 1024;
      runRow(t, std::to_string(kb) + "KB", mix, config);
    }
    std::cout << "-- cache size sweep (Table 2 default: 8KB) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Assoc", "RS (ms)", "RRS (ms)", "LS (ms)", "LSM (ms)",
             "LSM vs RS %", "LSM vs RRS %"});
    for (const std::int64_t ways : {1, 2, 4, 8}) {
      ExperimentConfig config;
      config.mpsoc.memory.l1d.assoc = ways;
      config.mpsoc.memory.l1i.assoc = ways;
      runRow(t, std::to_string(ways) + "-way", mix, config);
    }
    std::cout << "-- associativity sweep (default: 2-way) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Mem latency", "RS (ms)", "RRS (ms)", "LS (ms)", "LSM (ms)",
             "LSM vs RS %", "LSM vs RRS %"});
    for (const std::int64_t cycles : {25, 50, 75, 150}) {
      ExperimentConfig config;
      config.mpsoc.memory.memLatencyCycles = cycles;
      runRow(t, std::to_string(cycles) + " cyc", mix, config);
    }
    std::cout << "-- off-chip latency sweep (default: 75 cycles) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Cores", "RS (ms)", "RRS (ms)", "LS (ms)", "LSM (ms)",
             "LSM vs RS %", "LSM vs RRS %"});
    for (const std::size_t cores : {2u, 4u, 8u, 16u}) {
      ExperimentConfig config;
      config.mpsoc.coreCount = cores;
      runRow(t, std::to_string(cores), mix, config);
    }
    std::cout << "-- core count sweep (Table 2 default: 8) --\n"
              << t.ascii() << '\n';
  }
  return 0;
}

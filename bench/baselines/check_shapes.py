#!/usr/bin/env python3
"""Paper-shape and regression checker for the lapsched bench CSVs.

Consumes the CSV output of ``bench_fig6_isolated --csv`` or
``bench_fig7_concurrent --csv`` (any CSV whose header has a ``scheduler``
column, with the first column as the group key) and verifies:

 1. Paper shapes, per group (paper section 4, Figs. 6-7):
      * LS never has more data-cache misses than RS (within --tol),
      * LSM never has more data-cache misses than LS (within --tol);
    and strictly in aggregate over all groups:
      * sum(LS misses) <= sum(RS misses),
      * sum(LSM misses) <= sum(LS misses).
    The per-row tolerance absorbs the small non-monotonicities the
    synthetic workloads show at individual |T| points; the aggregate
    check has none.

 2. Drift against a committed baseline CSV (--baseline): every
    (group, scheduler) row must exist in both files, integer columns
    must match exactly (the simulator is deterministic), and float
    columns within a relative 1e-9.

Exits non-zero, listing every violation, if any check fails. To refresh
the baselines after an intentional behavior change:

    build/bench_fig6_isolated --csv > bench/baselines/fig6.csv
    build/bench_fig7_concurrent --csv > bench/baselines/fig7.csv
"""

import argparse
import csv
import sys


def read_rows(path):
    if path == "-":
        reader = csv.DictReader(sys.stdin)
        rows = list(reader)
        return reader.fieldnames, rows
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        rows = list(reader)
        return reader.fieldnames, rows


def parse_cell(text):
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def check_shapes(header, rows, tol):
    errors = []
    group_key = header[0]
    groups = {}
    for row in rows:
        groups.setdefault(row[group_key], {})[row["scheduler"]] = row
    totals = {}
    for group, by_sched in groups.items():
        missing = {"RS", "LS", "LSM"} - set(by_sched)
        if missing:
            errors.append(f"group {group}: missing schedulers {sorted(missing)}")
            continue
        misses = {s: int(by_sched[s]["dcache_misses"]) for s in by_sched}
        for sched, count in misses.items():
            totals[sched] = totals.get(sched, 0) + count
        for better, worse in (("LS", "RS"), ("LSM", "LS")):
            if misses[better] > misses[worse] * (1.0 + tol):
                errors.append(
                    f"group {group}: {better} misses ({misses[better]}) exceed "
                    f"{worse} misses ({misses[worse]}) beyond {tol:.0%} tolerance"
                )
    for better, worse in (("LS", "RS"), ("LSM", "LS")):
        if better in totals and totals[better] > totals[worse]:
            errors.append(
                f"aggregate: total {better} misses ({totals[better]}) exceed "
                f"total {worse} misses ({totals[worse]})"
            )
    return errors


def check_baseline(header, rows, baseline_path):
    errors = []
    base_header, base_rows = read_rows(baseline_path)
    if base_header != header:
        return [f"baseline {baseline_path}: header differs ({base_header} vs {header})"]
    group_key = header[0]

    def key(row):
        return (row[group_key], row["scheduler"])

    current = {key(r): r for r in rows}
    baseline = {key(r): r for r in base_rows}
    for k in sorted(set(current) | set(baseline)):
        if k not in current:
            errors.append(f"row {k}: present in baseline only")
            continue
        if k not in baseline:
            errors.append(f"row {k}: not in baseline (new row)")
            continue
        for col in header:
            have = parse_cell(current[k][col])
            want = parse_cell(baseline[k][col])
            if isinstance(want, float) or isinstance(have, float):
                scale = max(abs(float(want)), abs(float(have)), 1e-300)
                ok = abs(float(have) - float(want)) <= 1e-9 * scale
            else:
                ok = have == want
            if not ok:
                errors.append(f"row {k}, column {col}: {have} != baseline {want}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("csv", help="bench CSV output ('-' for stdin)")
    parser.add_argument("--baseline", help="committed baseline CSV to diff against")
    parser.add_argument(
        "--tol",
        type=float,
        default=0.05,
        help="per-group relative tolerance for the shape checks (default 0.05)",
    )
    args = parser.parse_args()

    header, rows = read_rows(args.csv)
    if not header or "scheduler" not in header:
        print("check_shapes: input has no 'scheduler' column", file=sys.stderr)
        return 2
    errors = check_shapes(header, rows, args.tol)
    if args.baseline:
        errors += check_baseline(header, rows, args.baseline)
    if errors:
        print(f"check_shapes: {len(errors)} violation(s) in {args.csv}:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(
        f"check_shapes: OK — {len(rows)} rows, paper shapes hold"
        + (", no drift from baseline" if args.baseline else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Paper-shape and regression checker for the lapsched bench CSVs.

Consumes the CSV output of ``bench_fig6_isolated --csv``,
``bench_fig7_concurrent --csv`` or ``bench_ablation --csv`` (any CSV
whose first column is the group key) and verifies:

 1. Paper shapes, per group, when a ``scheduler`` column is present
    (paper section 4, Figs. 6-7):
      * LS never has more data-cache misses than RS (within --tol),
      * LSM never has more data-cache misses than LS (within --tol);
    and strictly in aggregate over all groups:
      * sum(LS misses) <= sum(RS misses),
      * sum(LSM misses) <= sum(LS misses).
    The per-row tolerance absorbs the small non-monotonicities the
    synthetic workloads show at individual |T| points; the aggregate
    check has none. CSVs without a scheduler column (e.g.
    ``bench_tables --csv``) skip the shape checks and are baselined
    only.

 2. With --lsm-gap-monotone (the contention sweep): grouping rows by
    (l2_kb, bus_width) and ordering by |T|, LSM's relative miss margin
    over LS — (LS - LSM) / LS — must never shrink by more than
    --gap-tol as |T| grows: contention is supposed to make the
    re-layout matter *more*, not less.

 3. With --percentile-monotone (any CSV carrying sojourn percentile
    columns): sojourn_p50 <= sojourn_p95 <= sojourn_p99 on every row —
    the order-statistics sanity of the exact percentile accounting.

 4. With --saturation-shapes (the bench_saturation sweep): per arrival
    level,
      * under AdmitAll the best locality-aware policy (DLS/CALS/OLS)
        has p95 sojourn no worse than the best locality-blind baseline
        (RS/RRS) — locality-awareness shortens effective service time,
        so the knee sits at a higher arrival rate;
      * for every (arrival, scheduler) pair, p99 under SloShed never
        exceeds p99 under AdmitAll (equal while the SLO is loose);
    and at the knee (some arrival level), every scheduler sheds under
    SloShed, and at the heaviest level every scheduler sheds under
    QueueCap.

 5. With --fault-shapes (the bench_faults sweep): per scheduler, goodput
    at the moderate fault level with retries on recovers to at least
    --goodput-frac of the fault-free count; on every faulty retry-on
    level the best locality-aware p95 stays no worse than the best
    locality-blind p95; and every row conserves departures
    (processes == completed + rejected + retired + failed).

 6. Drift against a committed baseline CSV (--baseline): every row must
    exist in both files, integer columns must match exactly (the
    simulator is deterministic), and float columns within a relative
    1e-9. With --columns only the named columns are compared, so a
    table can grow new columns without invalidating its baseline
    (incremental baselining).

Exits non-zero, listing every violation, if any check fails. To refresh
the baselines after an intentional behavior change:

    build/bench_fig6_isolated --csv > bench/baselines/fig6.csv
    build/bench_fig7_concurrent --csv > bench/baselines/fig7.csv
    build/bench_ablation --csv > bench/baselines/ablation_contention.csv
    build/bench_tables --csv > bench/baselines/tables.csv
    build/bench_open_workload --csv > bench/baselines/open_workload.csv
    build/bench_saturation --csv > bench/baselines/saturation.csv
    build/bench_policy_overhead --csv > bench/baselines/policy_overhead.csv
    build/bench_faults --csv > bench/baselines/faults.csv

The policy_overhead baseline is compared on its deterministic columns
only (--columns t,scheduler,cores,window,events,decisions,checksum);
the timing columns are machine-dependent and gated by the relative
--decision-throughput shape instead.
"""

import argparse
import csv
import sys


def read_rows(path):
    if path == "-":
        reader = csv.DictReader(sys.stdin)
        rows = list(reader)
        return reader.fieldnames, rows
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        rows = list(reader)
        return reader.fieldnames, rows


def parse_cell(text):
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text


def check_shapes(header, rows, tol):
    errors = []
    group_key = header[0]
    groups = {}
    for row in rows:
        groups.setdefault(row[group_key], {})[row["scheduler"]] = row
    totals = {}
    for group, by_sched in groups.items():
        missing = {"RS", "LS", "LSM"} - set(by_sched)
        if missing:
            errors.append(f"group {group}: missing schedulers {sorted(missing)}")
            continue
        misses = {s: int(by_sched[s]["dcache_misses"]) for s in by_sched}
        for sched, count in misses.items():
            totals[sched] = totals.get(sched, 0) + count
        for better, worse in (("LS", "RS"), ("LSM", "LS")):
            if misses[better] > misses[worse] * (1.0 + tol):
                errors.append(
                    f"group {group}: {better} misses ({misses[better]}) exceed "
                    f"{worse} misses ({misses[worse]}) beyond {tol:.0%} tolerance"
                )
    for better, worse in (("LS", "RS"), ("LSM", "LS")):
        if better in totals and totals[better] > totals[worse]:
            errors.append(
                f"aggregate: total {better} misses ({totals[better]}) exceed "
                f"total {worse} misses ({totals[worse]})"
            )
    return errors


def check_lsm_gap_monotone(header, rows, gap_tol):
    """LSM's relative miss margin over LS must not shrink as |T| grows,
    per (l2_kb, bus_width) platform configuration."""
    needed = {"l2_kb", "bus_width", "t", "scheduler", "dcache_misses"}
    missing = needed - set(header)
    if missing:
        return [
            f"--lsm-gap-monotone: input lacks columns {sorted(missing)}"
        ]
    errors = []
    platforms = {}
    for row in rows:
        if row["scheduler"] not in ("LS", "LSM"):
            continue
        key = (row["l2_kb"], row["bus_width"])
        platforms.setdefault(key, {}).setdefault(int(row["t"]), {})[
            row["scheduler"]
        ] = int(row["dcache_misses"])
    for (l2, bus), by_t in sorted(platforms.items()):
        prev_t, prev_gap = None, None
        for t in sorted(by_t):
            point = by_t[t]
            if "LS" not in point or "LSM" not in point or point["LS"] == 0:
                errors.append(
                    f"platform l2={l2} bus={bus} t={t}: LS/LSM rows incomplete"
                )
                continue
            gap = (point["LS"] - point["LSM"]) / point["LS"]
            if prev_gap is not None and gap < prev_gap - gap_tol:
                errors.append(
                    f"platform l2={l2} bus={bus}: LSM-vs-LS miss gap shrank "
                    f"from {prev_gap:.1%} (t={prev_t}) to {gap:.1%} (t={t}) "
                    f"beyond {gap_tol:.1%} tolerance"
                )
            prev_t, prev_gap = t, gap
    return errors


def check_percentile_monotone(header, rows):
    """sojourn_p50 <= sojourn_p95 <= sojourn_p99 on every row."""
    needed = {"sojourn_p50", "sojourn_p95", "sojourn_p99"}
    missing = needed - set(header)
    if missing:
        return [f"--percentile-monotone: input lacks columns {sorted(missing)}"]
    errors = []
    key_cols = [header[0]] + (["scheduler"] if "scheduler" in header else [])
    for row in rows:
        p50, p95, p99 = (
            int(row["sojourn_p50"]),
            int(row["sojourn_p95"]),
            int(row["sojourn_p99"]),
        )
        if not p50 <= p95 <= p99:
            key = tuple(row[c] for c in key_cols)
            errors.append(
                f"row {key}: percentiles not monotone "
                f"(p50={p50}, p95={p95}, p99={p99})"
            )
    return errors


LOCALITY_AWARE = {"DLS", "CALS", "OLS"}
LOCALITY_BLIND = {"RS", "RRS"}


def check_saturation_shapes(header, rows):
    """Knee ordering and admission-control shapes of bench_saturation."""
    needed = {
        "scheduler",
        "admission",
        "arrival_cyc",
        "rejected",
        "sojourn_p95",
        "sojourn_p99",
    }
    missing = needed - set(header)
    if missing:
        return [f"--saturation-shapes: input lacks columns {sorted(missing)}"]
    errors = []
    # levels[arrival][admission][scheduler] = row
    levels = {}
    for row in rows:
        levels.setdefault(int(row["arrival_cyc"]), {}).setdefault(
            row["admission"], {}
        )[row["scheduler"]] = row
    schedulers = sorted({row["scheduler"] for row in rows})
    slo_knee_levels = 0
    for arrival in sorted(levels):
        by_admission = levels[arrival]
        admit_all = by_admission.get("AdmitAll", {})
        aware = [
            int(r["sojourn_p95"])
            for s, r in admit_all.items()
            if s in LOCALITY_AWARE
        ]
        blind = [
            int(r["sojourn_p95"])
            for s, r in admit_all.items()
            if s in LOCALITY_BLIND
        ]
        if not aware or not blind:
            errors.append(
                f"arrival {arrival}: AdmitAll rows lack a locality-aware or "
                f"locality-blind scheduler"
            )
        elif min(aware) > min(blind):
            errors.append(
                f"arrival {arrival}: best locality-aware p95 ({min(aware)}) "
                f"worse than best locality-blind p95 ({min(blind)})"
            )
        slo = by_admission.get("SloShed", {})
        for sched, row in slo.items():
            if sched not in admit_all:
                errors.append(
                    f"arrival {arrival}: {sched} has a SloShed row but no "
                    f"AdmitAll row"
                )
                continue
            p99_slo = int(row["sojourn_p99"])
            p99_all = int(admit_all[sched]["sojourn_p99"])
            if p99_slo > p99_all:
                errors.append(
                    f"arrival {arrival}, {sched}: SloShed p99 ({p99_slo}) "
                    f"exceeds AdmitAll p99 ({p99_all})"
                )
        if slo and all(int(r["rejected"]) > 0 for r in slo.values()):
            slo_knee_levels += 1
    if slo_knee_levels == 0:
        errors.append(
            "no arrival level where every scheduler sheds under SloShed "
            "(the sweep never crosses the SLO knee)"
        )
    heaviest = levels.get(min(levels), {}).get("QueueCap", {})
    for sched in schedulers:
        if sched not in heaviest or int(heaviest[sched]["rejected"]) == 0:
            errors.append(
                f"heaviest arrival level: {sched} sheds nothing under "
                f"QueueCap (the sweep never saturates the waiting room)"
            )
    return errors


def check_fault_shapes(header, rows, goodput_frac):
    """bench_faults shapes: retries recover goodput, the locality edge
    survives faults, and departures are conserved.

     * per scheduler, completed at (fault=moderate, retry=on) must be at
       least --goodput-frac of completed at fault=none;
     * per faulty retry-on fault level, the best locality-aware p95
       (DLS/CALS/OLS) must not exceed the best locality-blind p95
       (RS/RRS);
     * on every row, processes == completed + rejected + retired +
       failed (the engine's departure-conservation audit, visible in
       the CSV)."""
    needed = {
        "scheduler",
        "fault",
        "retry",
        "processes",
        "completed",
        "rejected",
        "retired",
        "failed",
        "sojourn_p95",
    }
    missing = needed - set(header)
    if missing:
        return [f"--fault-shapes: input lacks columns {sorted(missing)}"]
    errors = []
    # arms[(fault, retry)][scheduler] = row
    arms = {}
    for row in rows:
        n = int(row["processes"])
        accounted = (
            int(row["completed"])
            + int(row["rejected"])
            + int(row["retired"])
            + int(row["failed"])
        )
        if accounted != n:
            errors.append(
                f"row ({row['fault']}, retry={row['retry']}, "
                f"{row['scheduler']}): departures not conserved "
                f"({accounted} accounted of {n} processes)"
            )
        arms.setdefault((row["fault"], row["retry"]), {})[
            row["scheduler"]
        ] = row
    fault_free = next(
        (by_sched for (fault, _), by_sched in arms.items() if fault == "none"),
        {},
    )
    recovered = arms.get(("moderate", "on"), {})
    for sched, row in sorted(fault_free.items()):
        if sched not in recovered:
            errors.append(
                f"{sched}: fault-free row has no (moderate, retry=on) row"
            )
            continue
        base = int(row["completed"])
        got = int(recovered[sched]["completed"])
        if got < goodput_frac * base:
            errors.append(
                f"{sched}: goodput with retries at moderate faults ({got}) "
                f"below {goodput_frac:.0%} of fault-free ({base})"
            )
    for (fault, retry), by_sched in sorted(arms.items()):
        if fault == "none" or retry != "on":
            continue
        aware = [
            int(r["sojourn_p95"])
            for s, r in by_sched.items()
            if s in LOCALITY_AWARE
        ]
        blind = [
            int(r["sojourn_p95"])
            for s, r in by_sched.items()
            if s in LOCALITY_BLIND
        ]
        if not aware or not blind:
            errors.append(
                f"fault level {fault}: retry-on rows lack a locality-aware "
                f"or locality-blind scheduler"
            )
        elif min(aware) > min(blind):
            errors.append(
                f"fault level {fault}: best locality-aware p95 "
                f"({min(aware)}) worse than best locality-blind p95 "
                f"({min(blind)}) under faults"
            )
    return errors


def check_noc_shapes(header, rows):
    """bench_noc shapes: the hop-weighted scheduler earns its keep on
    the largest mesh.

     * every case carries one OLS (distance-blind) and one OLS-NOC
       (hop-weighted) row;
     * every row routes real NoC traffic (noc_transfers > 0) and
       completes its whole cohort (completed == processes);
     * on the largest cores value, per case: OLS-NOC sojourn_p95 and
       total migration penalty are both no worse than OLS, and at least
       one such case shows a strict penalty win — the distance term
       must actually remove migration churn somewhere, not just
       coincide with the blind policy everywhere.
    """
    needed = {
        "case",
        "scheduler",
        "cores",
        "processes",
        "completed",
        "noc_transfers",
        "noc_migration_penalty_cycles",
        "sojourn_p95",
    }
    missing = needed - set(header)
    if missing:
        return [f"--noc-shapes: input lacks columns {sorted(missing)}"]
    errors = []
    cases = {}
    for row in rows:
        if int(row["noc_transfers"]) <= 0:
            errors.append(
                f"row ({row['case']}, {row['scheduler']}): no NoC traffic "
                f"routed (noc_transfers == 0)"
            )
        if row["completed"] != row["processes"]:
            errors.append(
                f"row ({row['case']}, {row['scheduler']}): cohort not "
                f"conserved ({row['completed']} completed of "
                f"{row['processes']})"
            )
        cases.setdefault(row["case"], {})[row["scheduler"]] = row
    for case, by_sched in sorted(cases.items()):
        if set(by_sched) != {"OLS", "OLS-NOC"}:
            errors.append(
                f"case {case}: expected one OLS and one OLS-NOC row, got "
                f"{sorted(by_sched)}"
            )
    if errors:
        return errors
    largest = max(int(row["cores"]) for row in rows)
    strict_penalty_win = False
    for case, by_sched in sorted(cases.items()):
        if int(by_sched["OLS"]["cores"]) != largest:
            continue
        blind_p95 = int(by_sched["OLS"]["sojourn_p95"])
        aware_p95 = int(by_sched["OLS-NOC"]["sojourn_p95"])
        if aware_p95 > blind_p95:
            errors.append(
                f"case {case}: OLS-NOC p95 ({aware_p95}) worse than "
                f"distance-blind OLS ({blind_p95}) on the largest mesh"
            )
        blind_pen = int(by_sched["OLS"]["noc_migration_penalty_cycles"])
        aware_pen = int(by_sched["OLS-NOC"]["noc_migration_penalty_cycles"])
        if aware_pen > blind_pen:
            errors.append(
                f"case {case}: OLS-NOC migration penalty ({aware_pen}) "
                f"exceeds distance-blind OLS ({blind_pen}) on the largest "
                f"mesh"
            )
        elif aware_pen < blind_pen:
            strict_penalty_win = True
    if not strict_penalty_win:
        errors.append(
            f"no largest-mesh ({largest} cores) case where OLS-NOC strictly "
            f"cuts the migration penalty (the distance term never earned "
            f"its keep)"
        )
    return errors


def check_decision_throughput(header, rows, min_speedup):
    """bench_policy_overhead shapes: the indexed OLS implementation must
    make the *same* decisions as the legacy one (equal checksum and
    decision count at every |T|) and must make them at least
    --min-speedup times faster at the largest |T| (decisions/sec)."""
    needed = {"t", "scheduler", "decisions", "checksum", "decisions_per_sec"}
    missing = needed - set(header)
    if missing:
        return [
            f"--decision-throughput: input lacks columns {sorted(missing)}"
        ]
    errors = []
    by_t = {}
    for row in rows:
        by_t.setdefault(int(row["t"]), {})[row["scheduler"]] = row
    for t in sorted(by_t):
        point = by_t[t]
        if "OLS-old" not in point or "OLS-idx" not in point:
            errors.append(f"t={t}: missing an OLS-old or OLS-idx row")
            continue
        old, idx = point["OLS-old"], point["OLS-idx"]
        if old["checksum"] != idx["checksum"]:
            errors.append(
                f"t={t}: OLS-idx dispatch checksum ({idx['checksum']}) "
                f"differs from OLS-old ({old['checksum']}) — the indexed "
                f"planner changed a decision"
            )
        if old["decisions"] != idx["decisions"]:
            errors.append(
                f"t={t}: OLS-idx decision count ({idx['decisions']}) "
                f"differs from OLS-old ({old['decisions']})"
            )
    if by_t:
        t_max = max(by_t)
        point = by_t[t_max]
        if "OLS-old" in point and "OLS-idx" in point:
            old_dps = int(point["OLS-old"]["decisions_per_sec"])
            idx_dps = int(point["OLS-idx"]["decisions_per_sec"])
            if old_dps <= 0 or idx_dps < min_speedup * old_dps:
                errors.append(
                    f"t={t_max}: OLS-idx decisions/sec ({idx_dps}) is not "
                    f">= {min_speedup}x OLS-old ({old_dps})"
                )
    return errors


def check_baseline(header, rows, baseline_path, columns):
    errors = []
    base_header, base_rows = read_rows(baseline_path)
    if columns:
        missing = [c for c in columns if c not in header]
        missing += [c for c in columns if c not in base_header]
        if missing:
            return [
                f"baseline {baseline_path}: requested columns missing "
                f"from input or baseline: {sorted(set(missing))}"
            ]
        compared = columns
    else:
        if base_header != header:
            return [
                f"baseline {baseline_path}: header differs "
                f"({base_header} vs {header}); use --columns to compare "
                f"a subset"
            ]
        compared = header
    key_cols = [header[0]] + (["scheduler"] if "scheduler" in header else [])
    missing_keys = [c for c in key_cols if c not in (base_header or [])]
    if missing_keys:
        return [
            f"baseline {baseline_path}: key column(s) {missing_keys} absent "
            f"from baseline header {base_header}; regenerate the baseline"
        ]

    def key(row):
        return tuple(row[c] for c in key_cols)

    current = {key(r): r for r in rows}
    baseline = {key(r): r for r in base_rows}
    for k in sorted(set(current) | set(baseline)):
        if k not in current:
            errors.append(f"row {k}: present in baseline only")
            continue
        if k not in baseline:
            errors.append(f"row {k}: not in baseline (new row)")
            continue
        for col in compared:
            have = parse_cell(current[k][col])
            want = parse_cell(baseline[k][col])
            if isinstance(want, float) or isinstance(have, float):
                scale = max(abs(float(want)), abs(float(have)), 1e-300)
                ok = abs(float(have) - float(want)) <= 1e-9 * scale
            else:
                ok = have == want
            if not ok:
                errors.append(f"row {k}, column {col}: {have} != baseline {want}")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("csv", help="bench CSV output ('-' for stdin)")
    parser.add_argument("--baseline", help="committed baseline CSV to diff against")
    parser.add_argument(
        "--columns",
        help="comma-separated column subset for the baseline comparison "
        "(default: all columns, headers must match exactly)",
    )
    parser.add_argument(
        "--tol",
        type=float,
        default=0.05,
        help="per-group relative tolerance for the shape checks (default 0.05)",
    )
    parser.add_argument(
        "--no-shapes",
        action="store_true",
        help="skip the paper-shape orderings even when a scheduler column "
        "is present (e.g. bench_open_workload, whose scheduler set has no "
        "LS/LSM); the scheduler column still keys the baseline diff",
    )
    parser.add_argument(
        "--lsm-gap-monotone",
        action="store_true",
        help="require a non-shrinking LSM-vs-LS miss gap as |T| grows, "
        "per (l2_kb, bus_width) platform",
    )
    parser.add_argument(
        "--gap-tol",
        type=float,
        default=0.02,
        help="absolute gap shrink tolerated by --lsm-gap-monotone "
        "(default 0.02 = 2 points)",
    )
    parser.add_argument(
        "--percentile-monotone",
        action="store_true",
        help="require sojourn_p50 <= sojourn_p95 <= sojourn_p99 per row",
    )
    parser.add_argument(
        "--saturation-shapes",
        action="store_true",
        help="check the bench_saturation knee ordering and "
        "admission-control shapes",
    )
    parser.add_argument(
        "--fault-shapes",
        action="store_true",
        help="check the bench_faults shapes: retry goodput recovery, "
        "the locality p95 edge under faults, departure conservation",
    )
    parser.add_argument(
        "--goodput-frac",
        type=float,
        default=0.9,
        help="fraction of fault-free goodput --fault-shapes requires of "
        "the (moderate, retry=on) arm (default 0.9)",
    )
    parser.add_argument(
        "--noc-shapes",
        action="store_true",
        help="check the bench_noc shapes: cohort conservation, real NoC "
        "traffic per row, and the hop-weighted scheduler's p95/migration-"
        "penalty edge on the largest mesh",
    )
    parser.add_argument(
        "--decision-throughput",
        action="store_true",
        help="check the bench_policy_overhead shapes: OLS-idx decision-"
        "identical to OLS-old, and faster by --min-speedup at the "
        "largest |T|",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="decisions/sec factor --decision-throughput requires of "
        "OLS-idx over OLS-old at the largest |T| (default 5.0)",
    )
    args = parser.parse_args()

    header, rows = read_rows(args.csv)
    if not header:
        print("check_shapes: input has no header", file=sys.stderr)
        return 2
    errors = []
    checks = []
    if "scheduler" in header and not args.no_shapes:
        errors += check_shapes(header, rows, args.tol)
        checks.append("paper shapes hold")
    else:
        checks.append("shape checks skipped")
    if args.lsm_gap_monotone:
        errors += check_lsm_gap_monotone(header, rows, args.gap_tol)
        checks.append("LSM gap monotone")
    if args.percentile_monotone:
        errors += check_percentile_monotone(header, rows)
        checks.append("percentiles monotone")
    if args.saturation_shapes:
        errors += check_saturation_shapes(header, rows)
        checks.append("saturation shapes hold")
    if args.fault_shapes:
        errors += check_fault_shapes(header, rows, args.goodput_frac)
        checks.append("fault shapes hold")
    if args.noc_shapes:
        errors += check_noc_shapes(header, rows)
        checks.append("NoC shapes hold")
    if args.decision_throughput:
        errors += check_decision_throughput(header, rows, args.min_speedup)
        checks.append("decision throughput holds")
    if args.baseline:
        columns = args.columns.split(",") if args.columns else None
        errors += check_baseline(header, rows, args.baseline, columns)
        checks.append("no drift from baseline")
    if errors:
        print(f"check_shapes: {len(errors)} violation(s) in {args.csv}:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"check_shapes: OK — {len(rows)} rows, " + ", ".join(checks))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fold bench_micro runs into the committed BENCH_micro.json baseline.

Takes the google-benchmark JSON of a 1-thread run (the comparable
baseline: every entry), optionally an 8-thread run of the parallel
analysis benchmarks (--t8), and optionally the previous BENCH_micro.json
(--previous) whose numbers are carried over as previous_* fields so the
file records a before/after trajectory, not a single snapshot.

Output schema (one object per benchmark, times in ns):
  name, iterations, real_time_ns, cpu_time_ns         from the t1 run
  t8_real_time_ns, t8_cpu_time_ns, t8_speedup         when --t8 covers it
  previous_cpu_time_ns, speedup_vs_previous           when --previous has it
  vs_legacy_speedup                                   when a Legacy twin ran
  vs_faultfree_speedup                                when a FaultFree twin ran
t8_speedup is wall-time based (t1 real / t8 real): google-benchmark's
cpu_time counts only the driving thread, which mostly waits while the
pool works, so a cpu-time ratio would overstate parallel scaling.
The twin fields pair each benchmark with a reference twin sharing its
stem (e.g. BM_LocalityPlanLegacy/12 vs BM_LocalityPlan/12, or
BM_OpenWorkloadFaultPathFaultFree vs BM_OpenWorkloadFaultPath) and
record twin_cpu / current_cpu on the current entry — within-host
ratios, so check_bench_regression.py gates them like t8_speedup:
Legacy ratios guard an optimization's speedup, the FaultFree ratio
guards that the zero-rate fault path stays within noise of the
fault-free engine.
Context carries the google-benchmark host fields plus laps_threads notes.

Usage:
  merge_bench_json.py T1_JSON [--t8 T8_JSON] [--previous OLD] -o OUT
"""

import argparse
import json
import sys

# Twin suffix -> output field: BM_Foo<Tag> entries annotate BM_Foo with
# twin_cpu / current_cpu (see the twin-ratio block below).
TWINS = [
    ("Legacy", "vs_legacy_speedup"),
    ("FaultFree", "vs_faultfree_speedup"),
]


def load(path):
    with open(path) as f:
        return json.load(f)


def by_name(benchmarks):
    return {b["name"]: b for b in benchmarks}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("t1_json", help="google-benchmark JSON at LAPS_THREADS=1")
    parser.add_argument("--t8", help="google-benchmark JSON at LAPS_THREADS=8")
    parser.add_argument("--previous", help="previous BENCH_micro.json to diff against")
    parser.add_argument("-o", "--output", required=True)
    args = parser.parse_args()

    t1 = load(args.t1_json)
    t8 = by_name(load(args.t8)["benchmarks"]) if args.t8 else {}
    previous = {}
    if args.previous:
        try:
            previous = by_name(load(args.previous)["benchmarks"])
        except FileNotFoundError:
            pass  # first run: no trajectory yet

    out = []
    for bench in t1["benchmarks"]:
        name = bench["name"]
        entry = {
            "name": name,
            "iterations": bench["iterations"],
            "real_time_ns": round(bench["real_time"], 1),
            "cpu_time_ns": round(bench["cpu_time"], 1),
        }
        if "label" in bench:
            entry["label"] = bench["label"]
        if name in t8:
            entry["t8_real_time_ns"] = round(t8[name]["real_time"], 1)
            entry["t8_cpu_time_ns"] = round(t8[name]["cpu_time"], 1)
            if t8[name]["real_time"] > 0:
                entry["t8_speedup"] = round(
                    bench["real_time"] / t8[name]["real_time"], 3)
        prev = previous.get(name)
        if prev and "cpu_time_ns" in prev and entry["cpu_time_ns"] > 0:
            entry["previous_cpu_time_ns"] = prev["cpu_time_ns"]
            entry["speedup_vs_previous"] = round(
                prev["cpu_time_ns"] / entry["cpu_time_ns"], 3)
        out.append(entry)

    # Twin ratios: BM_Foo<Tag>/N measures a reference implementation on
    # the same instance as BM_Foo/N; the within-host cpu-time ratio
    # (reference / current) lands on the *current* entry, where the perf
    # gate picks it up via the *_speedup suffix. "Legacy" twins guard
    # optimizations (ratio >> 1 must hold); "FaultFree" twins guard the
    # inert fault path (ratio ~ 1 — the zero-rate engine must stay
    # within noise of the fault-free one, docs §13).
    entries = {e["name"]: e for e in out}
    for tag, field in TWINS:
        for twin_name, twin in entries.items():
            if tag not in twin_name:
                continue
            current = entries.get(twin_name.replace(tag, "", 1))
            if current is None or current["cpu_time_ns"] <= 0:
                continue
            current[field] = round(
                twin["cpu_time_ns"] / current["cpu_time_ns"], 3)

    context = dict(t1.get("context", {}))
    context["laps_threads_baseline"] = 1
    if args.t8:
        context["laps_threads_parallel"] = 8
    result = {"context": context, "benchmarks": out}
    with open(args.output, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

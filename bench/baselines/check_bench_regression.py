#!/usr/bin/env python3
"""Perf gate over BENCH_micro.json: fail on >threshold speedup regressions.

Compares a freshly produced BENCH_micro.json (see ``./ci.sh bench``)
against the committed baseline and fails when any ``*_speedup`` field
(``t8_speedup``: parallel scaling, plus any future within-host ratio)
regresses by more than --threshold (default 0.25 = 25%) relative to the
baseline's value. ``speedup_vs_previous`` is exempt — it is a one-time
before/after record, not a stable invariant (see the inline comment).

Benchmarks new in the current run pass (no baseline to regress from);
benchmarks that *disappeared* fail — a silently dropped benchmark is how
perf coverage rots. Raw cpu_time_ns is reported for context but not
gated: absolute times shift with the runner's hardware, while the
speedup ratios are computed within one host and stay comparable.

Usage:
  check_bench_regression.py CURRENT_JSON BASELINE_JSON [--threshold 0.25]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    return data.get("context", {}), {
        b["name"]: b for b in data.get("benchmarks", [])
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_micro.json")
    parser.add_argument("baseline", help="committed BENCH_micro.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated relative speedup regression (default 0.25)",
    )
    args = parser.parse_args()

    current_ctx, current = load(args.current)
    baseline_ctx, baseline = load(args.baseline)

    # Speedup ratios are only comparable within one host class: a
    # baseline captured on a 1-CPU container records pool-overhead
    # parity, and diffing a multicore run against it would neither catch
    # real scaling regressions nor avoid spurious ones. Coverage (no
    # benchmark silently dropped) is still enforced; refresh the
    # committed baseline from this host's artifact to arm the gate.
    gate_speedups = True
    cpus = (baseline_ctx.get("num_cpus"), current_ctx.get("num_cpus"))
    if cpus[0] != cpus[1]:
        message = (
            f"bench gate disarmed: baseline num_cpus={cpus[0]} vs run "
            f"num_cpus={cpus[1]} — speedup gating skipped; commit this "
            f"run's BENCH_micro.json artifact to arm the gate"
        )
        print(f"check_bench_regression: {message}")
        # GitHub Actions warning annotation, so the disarmed state is
        # visible in the UI instead of silently green.
        print(f"::warning file=BENCH_micro.json::{message}")
        gate_speedups = False

    errors = []
    checked = 0
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            errors.append(f"{name}: present in baseline but missing from run")
            continue
        if not gate_speedups:
            continue
        for field in sorted(set(base) & set(cur)):
            if not field.endswith("_speedup"):
                continue
            # speedup_vs_previous is deliberately NOT gated: it records a
            # one-time before/after trajectory (prev run / this run), so a
            # perf PR that improved it makes the next parity run "regress"
            # by construction. Only stable within-host ratios (t8_speedup)
            # are invariants worth failing CI over.
            want = base[field]
            have = cur[field]
            if not isinstance(want, (int, float)) or want <= 0:
                continue
            checked += 1
            if have < want * (1.0 - args.threshold):
                errors.append(
                    f"{name}: {field} regressed {want:.3f} -> {have:.3f} "
                    f"(more than {args.threshold:.0%}; "
                    f"cpu {base.get('cpu_time_ns')} -> "
                    f"{cur.get('cpu_time_ns')} ns)"
                )
    new = sorted(set(current) - set(baseline))
    if errors:
        print(f"check_bench_regression: {len(errors)} violation(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(
        f"check_bench_regression: OK — {checked} speedup field(s) within "
        f"{args.threshold:.0%} of baseline"
        + (f", {len(new)} new benchmark(s)" if new else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

/// \file bench_open_workload.cpp
/// \brief The open-workload sweep: arrival rate x |T| x scheduler.
///
/// The paper evaluates a closed system (every process resident at
/// cycle 0). This bench opens it (docs/ARCHITECTURE.md §9): task
/// cohorts arrive at seeded inter-arrival distances
/// (MpsocConfig::arrivals), an optional per-process lifetime retires
/// overstayers, and the schedulers compared are the ones that make
/// sense without a whole-set static plan — RS, RRS, and the dynamic
/// trio DLS / CALS / OLS (the incremental replanner this sweep
/// exists to exercise).
///
/// With --csv the sweep is emitted as CSV for
/// bench/baselines/check_shapes.py, which diffs it against the
/// committed baseline (open_workload.csv) — the simulation is
/// deterministic, so any drift is a behavior change. The paper-shape
/// orderings are skipped (--no-shapes): LS/LSM are closed-workload
/// policies and do not appear here.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/laps.h"
#include "util/parallel.h"

namespace {

using namespace laps;

struct Job {
  std::string label;
  std::int64_t arrivalKcyc = 0;   // mean inter-arrival, kilocycles
  std::int64_t lifetimeKcyc = 0;  // 0 = unlimited
  std::size_t t = 0;
  std::size_t mixIndex = 0;
  SchedulerKind kind = SchedulerKind::Random;
};

void sweep(bool csv) {
  const auto suite = standardSuite();
  const std::vector<SchedulerKind> kinds = openSchedulers();
  const std::vector<std::int64_t> arrivalMeansKcyc{100, 400};
  const std::vector<std::int64_t> lifetimesKcyc{0, 300};
  const std::vector<std::size_t> ts{2, 4};

  std::vector<Workload> mixes;
  mixes.reserve(ts.size());
  for (const std::size_t t : ts) mixes.push_back(concurrentScenario(suite, t));

  std::vector<Job> jobs;
  for (const std::int64_t arrival : arrivalMeansKcyc) {
    for (const std::int64_t lifetime : lifetimesKcyc) {
      for (std::size_t ti = 0; ti < ts.size(); ++ti) {
        const std::string label =
            "arr-" + std::to_string(arrival) + "k_life-" +
            (lifetime == 0 ? std::string("inf")
                           : std::to_string(lifetime) + "k") +
            "_t-" + std::to_string(ts[ti]);
        for (const SchedulerKind kind : kinds) {
          jobs.push_back(Job{label, arrival, lifetime, ts[ti], ti, kind});
        }
      }
    }
  }

  // Independent experiments fanned over the analysis pool with ordered
  // collection: the emitted rows are byte-exact with a serial sweep at
  // any thread count (each runExperiment is a pure function of its
  // inputs, including the seeded arrival schedule).
  const std::vector<ExperimentResult> results =
      parallelMap<ExperimentResult>(jobs.size(), [&](std::size_t i) {
        const Job& job = jobs[i];
        ExperimentConfig config;
        config.mpsoc.arrivals.emplace();
        config.mpsoc.arrivals->meanInterArrivalCycles =
            job.arrivalKcyc * 1000;
        if (job.lifetimeKcyc > 0) {
          config.mpsoc.arrivals->processLifetimeCycles =
              job.lifetimeKcyc * 1000;
        }
        return runExperiment(mixes[job.mixIndex], job.kind, config);
      });

  if (csv) {
    std::cout << "case,scheduler,arrival_kcyc,lifetime_kcyc,t,processes,"
                 "cohorts,makespan_cycles,dcache_misses,context_switches,"
                 "retired,total_latency_cycles,max_cohort_makespan_cycles\n";
  }
  Table table({"Case", "Sched", "Makespan (Mcyc)", "D$ misses",
               "Mean sojourn (kcyc)", "Retired"});

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const SimResult& r = results[i].sim;
    std::int64_t totalLatency = 0;
    std::int64_t maxCohortMakespan = 0;
    std::size_t processCount = 0;
    for (const CohortStats& cohort : r.cohorts) {
      totalLatency += cohort.totalLatencyCycles;
      maxCohortMakespan = std::max(maxCohortMakespan, cohort.makespanCycles());
      processCount += cohort.processCount;
    }
    if (csv) {
      std::cout << job.label << ',' << results[i].schedulerName << ','
                << job.arrivalKcyc << ',' << job.lifetimeKcyc << ','
                << job.t << ',' << mixes[job.mixIndex].graph.processCount()
                << ',' << r.cohorts.size() << ',' << r.makespanCycles << ','
                << r.dcacheTotal.misses << ',' << r.contextSwitches << ','
                << r.retiredProcesses << ',' << totalLatency << ','
                << maxCohortMakespan << '\n';
    } else {
      table.row()
          .cell(job.label)
          .cell(results[i].schedulerName)
          .cell(static_cast<double>(r.makespanCycles) / 1e6, 3)
          .cell(r.dcacheTotal.misses)
          .cell(processCount
                    ? static_cast<double>(totalLatency) /
                          (1e3 * static_cast<double>(processCount))
                    : 0.0,
                1)
          .cell(r.retiredProcesses);
    }
  }
  if (!csv) {
    std::cout << "=== Open-workload sweep (arrival mean x lifetime x |T| "
                 "x scheduler) ===\n"
              << table.ascii() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_open_workload [--csv]\n";
      return 2;
    }
  }
  sweep(csv);
  return 0;
}

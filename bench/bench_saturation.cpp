/// \file bench_saturation.cpp
/// \brief Saturation sweep: per-process heavy-tailed arrivals x
///        scheduler x admission policy.
///
/// Drives the keyed service workload (workloads/service.h) through the
/// open engine with per-process BoundedPareto arrivals
/// (docs/ARCHITECTURE.md §10) and sweeps the mean inter-arrival gap
/// across the saturation knee. Schedulers are the open set
/// {RS, RRS, DLS, CALS, OLS}; each point runs under every admission
/// policy (AdmitAll, QueueCap, SloShed). Reported per point: exact
/// p50/p95/p99 sojourn, rejected/retired counts, makespan and misses.
///
/// The interesting shapes — codified by
/// bench/baselines/check_shapes.py --saturation-shapes
/// --percentile-monotone:
///  * beyond the knee, locality-aware policies carry the same arrival
///    stream with lower p95 sojourn than the locality-blind baselines
///    (their effective service time is shorter, so they saturate at a
///    higher arrival rate);
///  * SloShed keeps p99 bounded at loads where AdmitAll's diverges, by
///    shedding; QueueCap bounds the backlog;
///  * p50 <= p95 <= p99 on every row (order statistics sanity).
///
/// With --csv the sweep is emitted for check_shapes.py, which also
/// diffs it against the committed baseline (saturation.csv) — the
/// simulation is deterministic, so any drift is a behavior change.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/laps.h"
#include "util/parallel.h"

namespace {

using namespace laps;

struct Job {
  std::string label;
  std::int64_t arrivalCycles = 0;  // mean inter-arrival gap
  AdmissionKind admission = AdmissionKind::AdmitAll;
  SchedulerKind kind = SchedulerKind::Random;
};

AdmissionConfig admissionConfig(AdmissionKind kind) {
  AdmissionConfig config;
  config.kind = kind;
  // QueueCap: roughly 1.5x the core count of waiting requests before
  // the door closes. SloShed: shed once the sojourn EWMA passes ~4x an
  // uncontended request's service time (~25 kcyc on the default
  // platform), reacting within a few exits (shift 2).
  config.queueCap = 12;
  config.sloTargetCycles = 20'000;
  config.sloEwmaShift = 1;
  return config;
}

void sweep(bool csv) {
  // Service-scale request stream: the default 96-request workload kept
  // every queue shallow, so admission and saturation effects barely
  // registered. 2048 requests (~85 per key) holds the system at the
  // knee long enough for the percentile separations to be structural
  // rather than small-sample noise — and for the indexed OLS planner
  // (PR 8) this is the |T| regime it exists for.
  ServiceWorkloadParams serviceParams;
  serviceParams.requestCount = 2048;
  serviceParams.keyCount = 48;
  const Workload service = makeServiceWorkload(serviceParams);
  const std::vector<SchedulerKind> kinds = openSchedulers();
  const std::vector<std::int64_t> arrivalMeans{8000, 2000, 1000, 500};
  const std::vector<AdmissionKind> admissions{
      AdmissionKind::AdmitAll, AdmissionKind::QueueCap, AdmissionKind::SloShed};

  std::vector<Job> jobs;
  for (const std::int64_t arrival : arrivalMeans) {
    for (const AdmissionKind admission : admissions) {
      const std::string label = "arr-" + std::to_string(arrival) + "_adm-" +
                                std::string(to_string(admission));
      for (const SchedulerKind kind : kinds) {
        jobs.push_back(Job{label, arrival, admission, kind});
      }
    }
  }

  // Independent experiments fanned over the analysis pool with ordered
  // collection: the emitted rows are byte-exact with a serial sweep at
  // any thread count.
  const std::vector<ExperimentResult> results =
      parallelMap<ExperimentResult>(jobs.size(), [&](std::size_t i) {
        const Job& job = jobs[i];
        ExperimentConfig config;
        config.mpsoc.arrivals.emplace();
        config.mpsoc.arrivals->meanInterArrivalCycles = job.arrivalCycles;
        config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
        config.mpsoc.arrivals->distribution = ArrivalDistribution::BoundedPareto;
        config.mpsoc.admission = admissionConfig(job.admission);
        return runExperiment(service, job.kind, config);
      });

  if (csv) {
    std::cout << "case,scheduler,arrival_cyc,admission,processes,admitted,"
                 "rejected,retired,makespan_cycles,dcache_misses,"
                 "context_switches,total_latency_cycles,sojourn_p50,"
                 "sojourn_p95,sojourn_p99\n";
  }
  Table table({"Case", "Sched", "Admitted", "Rejected", "p50 (kcyc)",
               "p95 (kcyc)", "p99 (kcyc)"});

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const SimResult& r = results[i].sim;
    std::int64_t totalLatency = 0;
    for (const CohortStats& cohort : r.cohorts) {
      totalLatency += cohort.totalLatencyCycles;
    }
    const std::size_t n = r.processes.size();
    const std::size_t admitted = n - static_cast<std::size_t>(r.rejectedProcesses);
    if (csv) {
      std::cout << job.label << ',' << results[i].schedulerName << ','
                << job.arrivalCycles << ',' << to_string(job.admission) << ','
                << n << ',' << admitted << ',' << r.rejectedProcesses << ','
                << r.retiredProcesses << ',' << r.makespanCycles << ','
                << r.dcacheTotal.misses << ',' << r.contextSwitches << ','
                << totalLatency << ',' << r.sojourn.p50 << ','
                << r.sojourn.p95 << ',' << r.sojourn.p99 << '\n';
    } else {
      table.row()
          .cell(job.label)
          .cell(results[i].schedulerName)
          .cell(admitted)
          .cell(r.rejectedProcesses)
          .cell(static_cast<double>(r.sojourn.p50) / 1e3, 1)
          .cell(static_cast<double>(r.sojourn.p95) / 1e3, 1)
          .cell(static_cast<double>(r.sojourn.p99) / 1e3, 1);
    }
  }
  if (!csv) {
    std::cout << "=== Saturation sweep (arrival mean x admission x scheduler, "
                 "per-process BoundedPareto arrivals) ===\n"
              << table.ascii() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_saturation [--csv]\n";
      return 2;
    }
  }
  sweep(csv);
  return 0;
}

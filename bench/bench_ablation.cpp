/// \file bench_ablation.cpp
/// \brief Ablations of the design choices the design notes of
/// docs/ARCHITECTURE.md (§§5-6) call out:
///   (a) LS's initial min-sharing round on/off (Fig. 3 lines 3-6);
///   (b) online greedy LS vs rigid static-plan execution;
///   (c) RRS quantum sweep (preemption cost vs load balance);
///   (d) cache flush-on-switch (how much of LS's win is cache
///       persistence across context switches);
///   (e) re-layout threshold T sweep around the paper's mean heuristic;
///   (f) the extension schedulers (FCFS, SJF, critical-path, online DLS)
///       against the paper's four.

#include <iostream>

#include "core/laps.h"

int main() {
  using namespace laps;

  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const Application isolated = makeMxM();

  std::cout << "=== Ablations (3-app mix unless noted) ===\n\n";

  {
    Table t({"LS variant", "Time (ms)", "D$ misses"});
    for (const bool initialRound : {true, false}) {
      ExperimentConfig config;
      config.sched.lsInitialMinSharingRound = initialRound;
      const auto r = runExperiment(mix, SchedulerKind::Locality, config);
      t.row()
          .cell(initialRound ? "with initial min-sharing round"
                             : "without initial round")
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses);
    }
    std::cout << "-- (a) Fig. 3 initial round --\n" << t.ascii() << '\n';
  }
  {
    Table t({"LS execution", "Time (ms)", "D$ misses", "Utilization"});
    for (const bool staticPlan : {false, true}) {
      const auto fps = mix.footprints();
      const SharingMatrix sharing = SharingMatrix::compute(fps);
      const AddressSpace space(mix.arrays);
      LocalityOptions options;
      options.staticPlan = staticPlan;
      LocalityScheduler policy(options);
      MpsocConfig mpsoc;
      MpsocSimulator sim(mix, space, sharing, policy, mpsoc);
      const SimResult r = sim.run();
      t.row()
          .cell(staticPlan ? "rigid static plan" : "online greedy (default)")
          .cell(mpsoc.cyclesToSeconds(r.makespanCycles) * 1e3, 3)
          .cell(r.dcacheTotal.misses)
          .cell(r.utilization(), 3);
    }
    std::cout << "-- (b) online vs static-plan LS --\n" << t.ascii() << '\n';
  }
  {
    Table t({"RRS quantum", "Time (ms)", "D$ misses", "Preemptions"});
    for (const std::int64_t quantum : {2'000, 8'000, 32'000, 128'000}) {
      ExperimentConfig config;
      config.sched.rrsQuantumCycles = quantum;
      const auto r = runExperiment(mix, SchedulerKind::RoundRobin, config);
      t.row()
          .cell(std::to_string(quantum) + " cyc")
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses)
          .cell(r.sim.preemptions);
    }
    std::cout << "-- (c) RRS quantum sweep (default 8000) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Config", "Time (ms)", "D$ misses"});
    for (const bool flush : {false, true}) {
      ExperimentConfig config;
      config.mpsoc.flushOnSwitch = flush;
      const auto r =
          runExperiment(isolated.workload, SchedulerKind::Locality, config);
      t.row()
          .cell(flush ? "flush caches on switch" : "caches persist (default)")
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses);
    }
    std::cout << "-- (d) cache persistence across switches (MxM, LS) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Threshold T", "Time (ms)", "Re-layouts", "Conflict misses"});
    ExperimentConfig probe;
    probe.mpsoc.memory.classifyMisses = true;
    for (const std::int64_t threshold :
         {std::int64_t{0}, std::int64_t{1'000}, std::int64_t{100'000},
          std::int64_t{1} << 60}) {
      ExperimentConfig config = probe;
      config.relayoutThreshold = threshold;
      const auto r =
          runExperiment(mix, SchedulerKind::LocalityMapping, config);
      t.row()
          .cell(threshold >= (std::int64_t{1} << 60)
                    ? "inf (re-layout off)"
                    : std::to_string(threshold))
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.relayoutedArrays)
          .cell(r.sim.dataMisses.conflict);
    }
    // The paper's default: mean over actionable pairs.
    ExperimentConfig config = probe;
    const auto r = runExperiment(mix, SchedulerKind::LocalityMapping, config);
    t.row()
        .cell("mean (paper default) = " + std::to_string(r.relayoutThreshold))
        .cell(r.sim.seconds * 1e3, 3)
        .cell(r.relayoutedArrays)
        .cell(r.sim.dataMisses.conflict);
    std::cout << "-- (e) re-layout threshold sweep (LSM) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Scheduler", "Time (ms)", "D$ misses", "Energy (mJ)"});
    const std::vector<SchedulerKind> kinds{
        SchedulerKind::Random,       SchedulerKind::RoundRobin,
        SchedulerKind::Fcfs,         SchedulerKind::Sjf,
        SchedulerKind::CriticalPath, SchedulerKind::DynamicLocality,
        SchedulerKind::Locality,     SchedulerKind::LocalityMapping};
    for (const auto kind : kinds) {
      const auto r = runExperiment(mix, kind, {});
      t.row()
          .cell(r.schedulerName)
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses)
          .cell(r.energyMj, 3);
    }
    std::cout << "-- (f) extension schedulers (paper §6 future work) --\n"
              << t.ascii() << '\n';
  }
  return 0;
}

/// \file bench_ablation.cpp
/// \brief Ablations of the design choices the design notes of
/// docs/ARCHITECTURE.md (§§5-7) call out:
///   (a) LS's initial min-sharing round on/off (Fig. 3 lines 3-6);
///   (b) online greedy LS vs rigid static-plan execution;
///   (c) RRS quantum sweep (preemption cost vs load balance);
///   (d) cache flush-on-switch (how much of LS's win is cache
///       persistence across context switches);
///   (e) re-layout threshold T sweep around the paper's mean heuristic;
///   (f) the extension schedulers (FCFS, SJF, critical-path, online DLS)
///       against the paper's four;
///   (g) the memory-hierarchy contention sweep: shared-L2 size x bus
///       width x |T| under RS/RRS/LS/LSM/CALS — does the LS win survive
///       contention, and does LSM's margin grow as the bus saturates?
///
/// With --csv only the (g) sweep is emitted, as CSV:
/// bench/baselines/check_shapes.py consumes it to assert LS >= RS on
/// every row, a non-shrinking LSM-vs-LS *miss margin* as |T| grows
/// (--lsm-gap-monotone; makespan is too load-imbalance-noisy to gate
/// on), and drift against the committed baseline.

#include <cstring>
#include <iostream>
#include <string>

#include "core/laps.h"
#include "util/parallel.h"

namespace {

void contentionSweep(bool csv) {
  using namespace laps;

  const auto suite = standardSuite();
  const std::vector<SchedulerKind> kinds{
      SchedulerKind::Random, SchedulerKind::RoundRobin,
      SchedulerKind::Locality, SchedulerKind::LocalityMapping,
      SchedulerKind::L2ContentionAware};
  const std::vector<std::int64_t> l2SizesKb{128, 256};
  const std::vector<std::int64_t> busWidthsBytes{4, 16};
  // |T| points chosen where the suite's re-layout opportunity grows with
  // the mix (the full 1..6 range is covered by bench_fig7_concurrent;
  // the t=3 and t=6 mixes give LSM almost nothing to re-layout, so they
  // carry no signal for the contention question asked here).
  const std::vector<std::size_t> ts{1, 4, 5};

  // One independent runExperiment per (platform point, scheduler),
  // flattened in emission order and fanned out over the thread pool.
  // Every experiment is a pure function of its (workload, config), so
  // the ordered collection keeps the CSV byte-exact with the serial
  // sweep at any thread count.
  struct Job {
    std::string label;
    std::int64_t l2Kb = 0;
    std::int64_t width = 0;
    std::size_t t = 0;
    std::size_t mixIndex = 0;
    SchedulerKind kind = SchedulerKind::Random;
  };
  std::vector<Workload> mixes;
  mixes.reserve(ts.size());
  for (const std::size_t t : ts) mixes.push_back(concurrentScenario(suite, t));
  std::vector<Job> jobs;
  for (const std::int64_t l2Kb : l2SizesKb) {
    for (const std::int64_t width : busWidthsBytes) {
      for (std::size_t ti = 0; ti < ts.size(); ++ti) {
        const std::string label = "l2-" + std::to_string(l2Kb) + "kb_bus-" +
                                  std::to_string(width) + "b_t-" +
                                  std::to_string(ts[ti]);
        for (const SchedulerKind kind : kinds) {
          jobs.push_back(Job{label, l2Kb, width, ts[ti], ti, kind});
        }
      }
    }
  }

  const std::vector<ExperimentResult> results =
      parallelMap<ExperimentResult>(jobs.size(), [&](std::size_t i) {
        const Job& job = jobs[i];
        ExperimentConfig config;
        // The composable platform descriptor (cache/platform.h): a
        // broadcast-coherent bus MPSoC with a shared banked L2 —
        // exactly what the legacy sharedL2/bus toggles resolved to, so
        // the sweep stays byte-identical to its committed baseline.
        PlatformConfig& platform = config.mpsoc.platform.emplace();
        platform.interconnect = InterconnectKind::Bus;
        platform.sharedL2.emplace();
        platform.sharedL2->sizeBytes = job.l2Kb * 1024;
        platform.bus.widthBytes = job.width;
        return runExperiment(mixes[job.mixIndex], job.kind, config);
      });

  if (csv) {
    std::cout.precision(12);
    std::cout << "case,scheduler,l2_kb,bus_width,t,processes,"
                 "makespan_cycles,seconds,dcache_misses,l2_accesses,"
                 "l2_misses,bus_wait_cycles\n";
  }
  Table table({"Case", "Sched", "Time (ms)", "D$ misses", "L2 miss%",
               "Bus wait (kcyc)"});

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const ExperimentResult& r = results[i];
    if (csv) {
      std::cout << job.label << ',' << r.schedulerName << ',' << job.l2Kb
                << ',' << job.width << ',' << job.t << ','
                << mixes[job.mixIndex].graph.processCount() << ','
                << r.sim.makespanCycles << ',' << r.sim.seconds << ','
                << r.sim.dcacheTotal.misses << ','
                << r.sim.l2Total.accesses << ','
                << r.sim.l2Total.misses << ',' << r.sim.busWaitCycles
                << '\n';
    } else {
      table.row()
          .cell(job.label)
          .cell(r.schedulerName)
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses)
          .cell(r.sim.l2Total.missRate() * 100.0, 1)
          .cell(static_cast<double>(r.sim.busWaitCycles) / 1e3, 0);
    }
  }
  if (!csv) {
    std::cout << "-- (g) memory-hierarchy contention sweep "
                 "(8-bank shared L2, 2-slot bus) --\n"
              << table.ascii() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace laps;

  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_ablation [--csv]\n";
      return 2;
    }
  }
  if (csv) {
    // CSV mode emits only the contention sweep (the machine-checked
    // table); the narrative ablations stay human output.
    contentionSweep(true);
    return 0;
  }

  const auto suite = standardSuite();
  const Workload mix = concurrentScenario(suite, 3);
  const Application isolated = makeMxM();

  std::cout << "=== Ablations (3-app mix unless noted) ===\n\n";

  {
    Table t({"LS variant", "Time (ms)", "D$ misses"});
    for (const bool initialRound : {true, false}) {
      ExperimentConfig config;
      config.sched.lsInitialMinSharingRound = initialRound;
      const auto r = runExperiment(mix, SchedulerKind::Locality, config);
      t.row()
          .cell(initialRound ? "with initial min-sharing round"
                             : "without initial round")
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses);
    }
    std::cout << "-- (a) Fig. 3 initial round --\n" << t.ascii() << '\n';
  }
  {
    Table t({"LS execution", "Time (ms)", "D$ misses", "Utilization"});
    for (const bool staticPlan : {false, true}) {
      const auto fps = mix.footprints();
      const SharingMatrix sharing = SharingMatrix::compute(fps);
      const AddressSpace space(mix.arrays);
      LocalityOptions options;
      options.staticPlan = staticPlan;
      LocalityScheduler policy(options);
      MpsocConfig mpsoc;
      MpsocSimulator sim(mix, space, sharing, policy, mpsoc);
      const SimResult r = sim.run();
      t.row()
          .cell(staticPlan ? "rigid static plan" : "online greedy (default)")
          .cell(mpsoc.cyclesToSeconds(r.makespanCycles) * 1e3, 3)
          .cell(r.dcacheTotal.misses)
          .cell(r.utilization(), 3);
    }
    std::cout << "-- (b) online vs static-plan LS --\n" << t.ascii() << '\n';
  }
  {
    Table t({"RRS quantum", "Time (ms)", "D$ misses", "Preemptions"});
    for (const std::int64_t quantum : {2'000, 8'000, 32'000, 128'000}) {
      ExperimentConfig config;
      config.sched.rrsQuantumCycles = quantum;
      const auto r = runExperiment(mix, SchedulerKind::RoundRobin, config);
      t.row()
          .cell(std::to_string(quantum) + " cyc")
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses)
          .cell(r.sim.preemptions);
    }
    std::cout << "-- (c) RRS quantum sweep (default 8000) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Config", "Time (ms)", "D$ misses"});
    for (const bool flush : {false, true}) {
      ExperimentConfig config;
      config.mpsoc.flushOnSwitch = flush;
      const auto r =
          runExperiment(isolated.workload, SchedulerKind::Locality, config);
      t.row()
          .cell(flush ? "flush caches on switch" : "caches persist (default)")
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses);
    }
    std::cout << "-- (d) cache persistence across switches (MxM, LS) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Threshold T", "Time (ms)", "Re-layouts", "Conflict misses"});
    ExperimentConfig probe;
    probe.mpsoc.memory.classifyMisses = true;
    for (const std::int64_t threshold :
         {std::int64_t{0}, std::int64_t{1'000}, std::int64_t{100'000},
          std::int64_t{1} << 60}) {
      ExperimentConfig config = probe;
      config.relayoutThreshold = threshold;
      const auto r =
          runExperiment(mix, SchedulerKind::LocalityMapping, config);
      t.row()
          .cell(threshold >= (std::int64_t{1} << 60)
                    ? "inf (re-layout off)"
                    : std::to_string(threshold))
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.relayoutedArrays)
          .cell(r.sim.dataMisses.conflict);
    }
    // The paper's default: mean over actionable pairs.
    ExperimentConfig config = probe;
    const auto r = runExperiment(mix, SchedulerKind::LocalityMapping, config);
    t.row()
        .cell("mean (paper default) = " + std::to_string(r.relayoutThreshold))
        .cell(r.sim.seconds * 1e3, 3)
        .cell(r.relayoutedArrays)
        .cell(r.sim.dataMisses.conflict);
    std::cout << "-- (e) re-layout threshold sweep (LSM) --\n"
              << t.ascii() << '\n';
  }
  {
    Table t({"Scheduler", "Time (ms)", "D$ misses", "Energy (mJ)"});
    const std::vector<SchedulerKind> kinds{
        SchedulerKind::Random,       SchedulerKind::RoundRobin,
        SchedulerKind::Fcfs,         SchedulerKind::Sjf,
        SchedulerKind::CriticalPath, SchedulerKind::DynamicLocality,
        SchedulerKind::Locality,     SchedulerKind::LocalityMapping};
    for (const auto kind : kinds) {
      const auto r = runExperiment(mix, kind, {});
      t.row()
          .cell(r.schedulerName)
          .cell(r.sim.seconds * 1e3, 3)
          .cell(r.sim.dcacheTotal.misses)
          .cell(r.energyMj, 3);
    }
    std::cout << "-- (f) extension schedulers (paper §6 future work) --\n"
              << t.ascii() << '\n';
  }
  contentionSweep(false);
  return 0;
}

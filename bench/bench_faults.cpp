/// \file bench_faults.cpp
/// \brief Fault-tolerance sweep: fault rate x retry policy x scheduler.
///
/// Drives the keyed service workload (workloads/service.h) through the
/// open engine with per-process Exponential arrivals while a seeded
/// FaultPlan (sim/faults.h, docs/ARCHITECTURE.md §13) injects core
/// outages, permanent core failures and process crashes. Three fault
/// levels (none / moderate / high) cross with the crash RetryPolicy
/// (off = the first crash is fatal, on = capped exponential backoff
/// with seeded jitter) over the open scheduler set {RS, RRS, DLS,
/// CALS, OLS}. Reported per point: goodput (completed requests),
/// crash/retry/failure counters, availability accounting and the exact
/// sojourn percentiles.
///
/// The interesting shapes — codified by
/// bench/baselines/check_shapes.py --fault-shapes:
///  * retries recover goodput: at the moderate fault level every
///    scheduler completes at least 90% of its fault-free request count
///    once retries are on, while retry-off permanently fails every
///    crashed request;
///  * the locality edge survives faults: on every faulty retry-on
///    level the best locality-aware policy (DLS/CALS/OLS) still has
///    p95 sojourn no worse than the best locality-blind baseline
///    (RS/RRS), displacement penalties and all;
///  * conservation: processes == completed + rejected + retired +
///    failed on every row (the engine's departure audit, visible in
///    the CSV).
///
/// With --csv the sweep is emitted for check_shapes.py, which also
/// diffs it against the committed baseline (faults.csv) — the fault
/// sequence is seeded, so any drift is a behavior change.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/laps.h"
#include "util/parallel.h"

namespace {

using namespace laps;

/// The swept fault intensities. Means are chosen against the ~700k-cycle
/// fault-free makespan of the 512-request stream: moderate injects a few
/// outages and ~8 crashes; high adds permanent core failures (the seed
/// kills five of the eight cores — deep graceful degradation) and
/// roughly one crash per 12 requests.
enum class FaultLevel { None, Moderate, High };

const char* to_string(FaultLevel level) {
  switch (level) {
    case FaultLevel::None: return "none";
    case FaultLevel::Moderate: return "moderate";
    case FaultLevel::High: return "high";
  }
  return "?";
}

std::optional<FaultPlan> faultPlan(FaultLevel level, bool retryOn) {
  if (level == FaultLevel::None) return std::nullopt;
  FaultPlan plan;
  plan.seed = 7;
  if (level == FaultLevel::Moderate) {
    plan.meanCoreOutageCycles = 400'000;
    plan.meanCrashCycles = 60'000;
  } else {
    plan.meanCoreFailureCycles = 200'000;
    plan.meanCoreOutageCycles = 150'000;
    plan.meanCrashCycles = 25'000;
  }
  // Retry off: the first crash exhausts the budget and the request
  // permanently fails. Retry on: up to three re-executions under capped
  // exponential backoff; the jitter exercises the RetryJitter stream in
  // the committed baseline.
  plan.retry.maxAttempts = retryOn ? 3 : 0;
  plan.retry.backoffJitterCycles = retryOn ? 512 : 0;
  return plan;
}

struct Job {
  std::string label;
  FaultLevel level = FaultLevel::None;
  bool retryOn = false;
  SchedulerKind kind = SchedulerKind::Random;
};

void sweep(bool csv) {
  // Service-scale request stream at a sub-saturation arrival rate: the
  // fault-free run completes everything, so goodput losses in the
  // faulty arms are attributable to the injected faults, not to load.
  ServiceWorkloadParams serviceParams;
  serviceParams.requestCount = 512;
  serviceParams.keyCount = 32;
  const Workload service = makeServiceWorkload(serviceParams);
  const std::vector<SchedulerKind> kinds = openSchedulers();
  const std::vector<std::pair<FaultLevel, bool>> arms{
      {FaultLevel::None, false},
      {FaultLevel::Moderate, false},
      {FaultLevel::Moderate, true},
      {FaultLevel::High, false},
      {FaultLevel::High, true},
  };

  std::vector<Job> jobs;
  for (const auto& [level, retryOn] : arms) {
    const std::string label = std::string("fault-") + to_string(level) +
                              "_retry-" + (retryOn ? "on" : "off");
    for (const SchedulerKind kind : kinds) {
      jobs.push_back(Job{label, level, retryOn, kind});
    }
  }

  // Independent experiments fanned over the analysis pool with ordered
  // collection: the emitted rows are byte-exact with a serial sweep at
  // any thread count.
  const std::vector<ExperimentResult> results =
      parallelMap<ExperimentResult>(jobs.size(), [&](std::size_t i) {
        const Job& job = jobs[i];
        ExperimentConfig config;
        config.mpsoc.arrivals.emplace();
        config.mpsoc.arrivals->meanInterArrivalCycles = 1000;
        config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
        config.mpsoc.arrivals->distribution = ArrivalDistribution::Exponential;
        config.mpsoc.faults = faultPlan(job.level, job.retryOn);
        return runExperiment(service, job.kind, config);
      });

  if (csv) {
    std::cout << "case,scheduler,fault,retry,processes,completed,rejected,"
                 "retired,failed,crashes,retries,retries_shed,core_failures,"
                 "core_outages,recoveries,suppressed,migrations,"
                 "migration_penalty_cycles,core_down_cycles,makespan_cycles,"
                 "sojourn_p50,sojourn_p95,sojourn_p99\n";
  }
  Table table({"Case", "Sched", "Completed", "Crashes", "Failed",
               "Down (kcyc)", "p95 (kcyc)"});

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const SimResult& r = results[i].sim;
    const FaultStats& f = r.faults;
    if (csv) {
      std::cout << job.label << ',' << results[i].schedulerName << ','
                << to_string(job.level) << ',' << (job.retryOn ? "on" : "off")
                << ',' << r.processes.size() << ',' << r.completedProcesses()
                << ',' << r.rejectedProcesses << ',' << r.retiredProcesses
                << ',' << f.failedProcesses << ',' << f.processCrashes << ','
                << f.retriesScheduled << ',' << f.retriesShed << ','
                << f.coreFailures << ',' << f.coreOutages << ','
                << f.coreRecoveries << ',' << f.faultsSuppressed << ','
                << f.faultMigrations << ',' << f.migrationPenaltyCycles << ','
                << f.coreDownCycles << ',' << r.makespanCycles << ','
                << r.sojourn.p50 << ',' << r.sojourn.p95 << ','
                << r.sojourn.p99 << '\n';
    } else {
      table.row()
          .cell(job.label)
          .cell(results[i].schedulerName)
          .cell(r.completedProcesses())
          .cell(f.processCrashes)
          .cell(f.failedProcesses)
          .cell(static_cast<double>(f.coreDownCycles) / 1e3, 1)
          .cell(static_cast<double>(r.sojourn.p95) / 1e3, 1);
    }
  }
  if (!csv) {
    std::cout << "=== Fault-tolerance sweep (fault level x retry policy x "
                 "scheduler, per-process Exponential arrivals) ===\n"
              << table.ascii() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_faults [--csv]\n";
      return 2;
    }
  }
  sweep(csv);
  return 0;
}

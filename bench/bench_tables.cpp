/// \file bench_tables.cpp
/// \brief Regenerates paper Table 1 (application suite) and Table 2
/// (default simulation parameters), validating that the library defaults
/// match the paper's platform.
///
/// With --csv the Table 1 workload statistics are emitted as CSV so
/// bench/baselines/check_shapes.py can baseline them (no scheduler
/// column: the paper-shape checks are skipped, only drift is flagged).

#include <cstring>
#include <iostream>

#include "core/laps.h"

int main(int argc, char** argv) {
  using namespace laps;

  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_tables [--csv]\n";
      return 2;
    }
  }

  // --- Table 1: applications used in this study. ---
  const auto suite = standardSuite();
  if (csv) {
    std::cout << "app,processes,arrays,refs\n";
    for (const auto& app : suite) {
      std::int64_t refs = 0;
      for (const auto& p : app.workload.graph.processes()) {
        refs += p.totalReferences();
      }
      std::cout << app.name << ',' << app.processCount() << ','
                << app.workload.arrays.size() << ',' << refs << '\n';
    }
    return 0;
  }
  Table t1({"Application (Task)", "Brief Description", "Processes",
            "Arrays", "Refs (x1000)"});
  for (const auto& app : suite) {
    std::int64_t refs = 0;
    for (const auto& p : app.workload.graph.processes()) {
      refs += p.totalReferences();
    }
    t1.row()
        .cell(app.name)
        .cell(app.description)
        .cell(app.processCount())
        .cell(app.workload.arrays.size())
        .cell(static_cast<double>(refs) / 1000.0, 1);
  }
  std::cout << "=== Table 1: applications used in this study ===\n"
            << t1.ascii() << '\n';
  std::cout << "Process counts span " << 9 << ".." << 37
            << " (paper: \"vary between 9 and 37\")\n\n";

  // --- Table 2: default simulation parameters. ---
  const ExperimentConfig config;
  const MpsocConfig& m = config.mpsoc;
  Table t2({"Parameter", "Value"});
  t2.row().cell("Number of processors").cell(m.coreCount);
  t2.row()
      .cell("Data/instruction cache per processor")
      .cell(std::to_string(m.memory.l1d.sizeBytes / 1024) + "KB, " +
            std::to_string(m.memory.l1d.assoc) + "-way");
  t2.row()
      .cell("Cache access latency")
      .cell(std::to_string(m.memory.l1d.hitLatencyCycles) + " cycle");
  t2.row()
      .cell("Off-chip memory access latency")
      .cell(std::to_string(m.memory.memLatencyCycles) + " cycles");
  t2.row()
      .cell("Processor speed")
      .cell(std::to_string(static_cast<int>(m.clockHz / 1e6)) + " MHz");
  std::cout << "=== Table 2: default simulation parameters ===\n"
            << t2.ascii() << '\n';

  // Validate against the paper's values (loudly, so a drifting default
  // breaks this bench).
  bool ok = m.coreCount == 8 && m.memory.l1d.sizeBytes == 8192 &&
            m.memory.l1d.assoc == 2 && m.memory.l1d.hitLatencyCycles == 2 &&
            m.memory.memLatencyCycles == 75 && m.clockHz == 200e6;
  std::cout << (ok ? "defaults match paper Table 2\n"
                   : "WARNING: defaults deviate from paper Table 2!\n");
  return ok ? 0 : 1;
}

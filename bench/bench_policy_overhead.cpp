/// \file bench_policy_overhead.cpp
/// \brief Scheduling-decision throughput of the dynamic policies.
///
/// Every other bench measures the *simulated* system; this one measures
/// the scheduler itself. A windowed driver streams a layered synthetic
/// workload (synthetic_overhead.h) through a policy — arrivals admitted
/// until ~window processes are live, one dispatch round per step, every
/// dispatched process completing and exiting at the end of its round —
/// and reports decisions/second and ns/event for DLS, CALS, and OLS in
/// both implementations (legacy loops vs the PlanIndex core behind
/// OnlineLocalityOptions::indexedPlanner).
///
/// The event protocol is the simulation engine's (onArrival before
/// onReady, onComplete then onExit, readiness fired exactly once), so
/// the costs measured are the ones the engine pays — without the cache
/// model drowning them out.
///
/// Each row carries an FNV-1a checksum over the (core, process)
/// dispatch sequence. OLS-old and OLS-idx must produce the *same*
/// checksum at every |T| — the two implementations are plan-identical
/// by construction, and committing the checksums to the baseline turns
/// that claim into a regression test. Timing columns are excluded from
/// the baseline diff (wall-clock is machine-dependent); the shape check
/// (check_shapes.py --decision-throughput) instead asserts the relative
/// ordering: OLS-idx decisions/sec at the largest |T| must beat OLS-old
/// by the required factor.

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/laps.h"
#include "synthetic_overhead.h"

namespace {

using namespace laps;

constexpr std::size_t kCores = 8;        // paper Table 2 platform
constexpr std::size_t kLayerWidth = 64;  // root layer / ready-front width
constexpr std::size_t kBand = 32;        // sharing band size
constexpr std::size_t kWindow = 256;     // target live-process count

struct DriveResult {
  std::uint64_t events = 0;     // policy callbacks issued (incl. picks)
  std::uint64_t decisions = 0;  // picks that returned a process
  std::uint64_t checksum = 0;   // FNV-1a over the dispatch sequence
  std::int64_t nanos = 0;       // wall time of the whole drive
};

/// Streams the workload through \p policy with the engine's event
/// protocol (see file comment). Deterministic for a deterministic
/// policy: arrival order is id order, one dispatch round per step.
DriveResult drive(SchedulerPolicy& policy, const Workload& workload,
                  const SharingMatrix& sharing, const AddressSpace& space) {
  const ExtendedProcessGraph& graph = workload.graph;
  const std::size_t n = graph.processCount();
  DriveResult out;
  std::uint64_t checksum = 14695981039346656037ull;  // FNV-1a offset basis
  const auto mix = [&checksum](std::uint64_t value) {
    checksum ^= value;
    checksum *= 1099511628211ull;  // FNV-1a prime
  };

  const auto start = std::chrono::steady_clock::now();
  SchedContext context{&graph, &sharing, kCores, &workload, &space};
  policy.reset(context);

  std::vector<bool> arrived(n, false);
  std::vector<bool> completed(n, false);
  std::vector<std::optional<ProcessId>> previous(kCores);
  const auto depsDone = [&](ProcessId p) {
    for (const ProcessId pred : graph.predecessors(p)) {
      if (!completed[pred]) return false;
    }
    return true;
  };

  std::size_t nextArrival = 0;
  std::size_t liveCount = 0;
  std::size_t completedCount = 0;
  std::vector<ProcessId> ran;
  while (completedCount < n) {
    // Admit until the live window is full (or the workload is drained).
    while (nextArrival < n && liveCount < kWindow) {
      const auto p = static_cast<ProcessId>(nextArrival++);
      arrived[p] = true;
      ++liveCount;
      policy.onArrival(p);
      ++out.events;
      if (depsDone(p)) {
        policy.onReady(p);
        ++out.events;
      }
    }
    // One dispatch round: each core asks once.
    ran.clear();
    for (std::size_t core = 0; core < kCores; ++core) {
      const std::optional<ProcessId> pick =
          policy.pickNext(core, previous[core]);
      ++out.events;
      if (!pick) continue;
      ++out.decisions;
      mix(core);
      mix(*pick);
      previous[core] = *pick;
      ran.push_back(*pick);
    }
    check(!ran.empty(),
          "bench_policy_overhead: driver stalled (policy stranded work)");
    // Everything dispatched this round completes and exits: releases
    // successors, keeps the live count hovering at the window.
    for (const ProcessId p : ran) {
      policy.onComplete(p);
      policy.onExit(p);
      out.events += 2;
      completed[p] = true;
      ++completedCount;
      --liveCount;
      for (const ProcessId succ : graph.successors(p)) {
        if (arrived[succ] && !completed[succ] && depsDone(succ)) {
          policy.onReady(succ);
          ++out.events;
        }
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  out.nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  out.checksum = checksum;
  return out;
}

struct Arm {
  std::string name;
  std::unique_ptr<SchedulerPolicy> policy;
};

std::vector<Arm> makeArms() {
  std::vector<Arm> arms;
  arms.push_back(Arm{"DLS", std::make_unique<DynamicLocalityScheduler>()});
  arms.push_back(
      Arm{"CALS", std::make_unique<L2ContentionAwareScheduler>()});
  OnlineLocalityOptions legacy;
  legacy.indexedPlanner = false;
  arms.push_back(
      Arm{"OLS-old", std::make_unique<OnlineLocalityScheduler>(legacy)});
  OnlineLocalityOptions indexed;
  indexed.indexedPlanner = true;
  arms.push_back(
      Arm{"OLS-idx", std::make_unique<OnlineLocalityScheduler>(indexed)});
  return arms;
}

void sweep(bool csv) {
  const std::vector<std::size_t> sizes{100, 1000, 4000};
  // The |T| column leads: check_shapes.py keys baseline rows on
  // (first column, scheduler), which must be unique per row.
  if (csv) {
    std::cout << "t,scheduler,cores,window,events,decisions,checksum,"
                 "elapsed_ns,decisions_per_sec,ns_per_event\n";
  }
  Table table({"Sched", "|T|", "Events", "Decisions", "Decisions/s",
               "ns/event"});
  for (const std::size_t n : sizes) {
    const Workload workload = synth::makeLayeredWorkload(n, kLayerWidth);
    const SharingMatrix sharing = synth::makeBandedSharing(n, kBand);
    const AddressSpace space(workload.arrays);
    for (Arm& arm : makeArms()) {
      const DriveResult r = drive(*arm.policy, workload, sharing, space);
      const std::int64_t nanos = r.nanos > 0 ? r.nanos : 1;
      const auto decisionsPerSec = static_cast<std::uint64_t>(
          (static_cast<unsigned __int128>(r.decisions) * 1'000'000'000u) /
          static_cast<std::uint64_t>(nanos));
      const std::uint64_t nsPerEvent =
          r.events > 0 ? static_cast<std::uint64_t>(nanos) / r.events : 0;
      if (csv) {
        std::cout << n << ',' << arm.name << ',' << kCores << ','
                  << kWindow << ',' << r.events << ',' << r.decisions
                  << ',' << r.checksum << ',' << nanos << ','
                  << decisionsPerSec << ',' << nsPerEvent << '\n';
      } else {
        table.row()
            .cell(arm.name)
            .cell(n)
            .cell(r.events)
            .cell(r.decisions)
            .cell(decisionsPerSec)
            .cell(nsPerEvent);
      }
    }
  }
  if (!csv) {
    std::cout << "=== Scheduling-decision throughput (windowed driver, "
              << kCores << " cores, window " << kWindow << ") ===\n"
              << table.ascii() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_policy_overhead [--csv]\n";
      return 2;
    }
  }
  sweep(csv);
  return 0;
}

/// \file bench_noc.cpp
/// \brief NoC sweep: mesh size x link width x OLS distance-awareness.
///
/// Drives the keyed service workload through the open engine on a
/// directory-coherent mesh platform (cache/platform.h) and sweeps the
/// die size across {2x2, 4x4, 8x8} and the link width across {8, 32}
/// bytes. Each arm runs distance-blind OLS (hopWeight = 0, the PR 8
/// policy exactly) against hop-weighted OLS ("OLS-NOC"), which scores
/// every steal, balance move and arrival patch by
/// LocalityScore::key — sharing first, NoC hops as the tie-break — and
/// seeds rebuilds with the spiral initial mapping.
///
/// The interesting shape — codified by
/// bench/baselines/check_shapes.py --noc-shapes:
///  * on the largest mesh, OLS-NOC carries the same arrival stream
///    with p95 sojourn no worse than distance-blind OLS per link
///    width, and strictly cuts the total migration penalty where
///    cross-core resumes occur at all: hop-weighted placement keeps a
///    process's resumes near its cache-warm tile, so the
///    distance-scaled migration penalty (NocConfig::migrationHopCycles)
///    stops taxing the tail. On the narrow-link arm the bisection —
///    not placement — is the bottleneck at matched load and the two
///    arms coincide; the edge lives exactly where the scheduler has
///    migration churn to remove, which is the paper's locality
///    argument transplanted to the interconnect;
///  * every row routes real traffic (noc_transfers > 0), completes its
///    whole cohort (completed == processes) and keeps p50 <= p95 <=
///    p99 (order-statistics sanity).
///
/// With --csv the sweep is emitted for check_shapes.py, which also
/// diffs it against the committed baseline (noc.csv) — the simulation
/// is deterministic, so any drift is a behavior change.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/laps.h"
#include "util/parallel.h"

namespace {

using namespace laps;

struct Job {
  std::string label;
  std::size_t cores = 4;
  std::int64_t linkWidthBytes = 8;
  std::int64_t arrivalCycles = 0;
  std::int64_t hopWeight = 0;  // 0 = distance-blind OLS
};

/// Hop penalty per unit distance for the distance-aware arm, in
/// 1/LocalityScore::kSharingScale sharing units: 2048 lets two hops of
/// proximity outweigh one unit of sharing — strong enough to redirect
/// near-tie steals, weak enough that real sharing clusters still
/// dominate placement.
constexpr std::int64_t kHopWeight = 2048;

PlatformConfig meshPlatform(std::int64_t linkWidthBytes) {
  PlatformConfig platform;
  platform.interconnect = InterconnectKind::Mesh;
  platform.coherence = CoherenceKind::Directory;
  platform.sharedL2.emplace();
  platform.sharedL2->sizeBytes = 64 * 1024;
  platform.sharedL2->bankCount = 8;
  platform.noc.hopCycles = 4;
  platform.noc.linkWidthBytes = linkWidthBytes;
  // A migration drags the resume's warm state across the die: charge
  // it per hop, so *where* the scheduler resumes a process matters.
  platform.noc.migrationHopCycles = 1024;
  return platform;
}

void sweep(bool csv) {
  ServiceWorkloadParams serviceParams;
  serviceParams.requestCount = 1024;
  serviceParams.keyCount = 48;
  const Workload service = makeServiceWorkload(serviceParams);

  // Arrival mean matched to each platform's drain rate — scaled to the
  // die (8x8 drains ~16x faster than 2x2) and to the link width (8-byte
  // links quadruple each transfer's occupancy, so the 8x8/lw-8 bisection
  // saturates far earlier). Every arm runs at a comparable moderate
  // utilization, kept out of deep saturation on purpose: under overload
  // any placement preference degenerates into a fairness fight over one
  // global backlog; at service load the tail measures what placement
  // actually controls (resume distance, route length), which is the
  // regime the paper's locality argument speaks to.
  struct Arm {
    std::size_t cores;
    std::int64_t linkWidthBytes;
    std::int64_t arrivalCycles;
  };
  const std::vector<Arm> arms{{4, 8, 4000},  {4, 32, 4000},
                              {16, 8, 1200}, {16, 32, 1200},
                              {64, 8, 850}, {64, 32, 300}};

  std::vector<Job> jobs;
  for (const Arm& arm : arms) {
    const std::string label = "mesh-" + std::to_string(arm.cores) + "_lw-" +
                              std::to_string(arm.linkWidthBytes);
    for (const std::int64_t hopWeight : {std::int64_t{0}, kHopWeight}) {
      jobs.push_back(
          Job{label, arm.cores, arm.linkWidthBytes, arm.arrivalCycles,
              hopWeight});
    }
  }

  // Independent experiments fanned over the analysis pool with ordered
  // collection: the emitted rows are byte-exact with a serial sweep at
  // any thread count.
  const std::vector<ExperimentResult> results =
      parallelMap<ExperimentResult>(jobs.size(), [&](std::size_t i) {
        const Job& job = jobs[i];
        ExperimentConfig config;
        config.mpsoc.coreCount = job.cores;
        config.mpsoc.platform = meshPlatform(job.linkWidthBytes);
        config.mpsoc.arrivals.emplace();
        config.mpsoc.arrivals->meanInterArrivalCycles = job.arrivalCycles;
        config.mpsoc.arrivals->granularity = ArrivalGranularity::PerProcess;
        config.mpsoc.arrivals->distribution = ArrivalDistribution::BoundedPareto;
        config.sched.onlineLocality.hopWeight = job.hopWeight;
        // Preemptive OLS: a request spans several quanta, so resumes —
        // and their distance-scaled migration penalties — are routine.
        config.sched.onlineLocality.quantumCycles = 2000;
        // Pure incremental patching: a periodic full rebuild re-places
        // every pending process with no regard to where its warm state
        // sits, churning cross-die resumes in BOTH arms (and costs
        // O(n^2) per rebuild at this process count).
        config.sched.onlineLocality.rebuildThreshold = 1 << 30;
        return runExperiment(service, SchedulerKind::OnlineLocality, config);
      });

  if (csv) {
    std::cout << "case,scheduler,cores,link_width,processes,completed,"
                 "makespan_cycles,dcache_misses,migrations,"
                 "noc_transfers,noc_hop_cycles,noc_link_wait_cycles,"
                 "noc_migration_penalty_cycles,directory_inv_sent,"
                 "directory_inv_filtered,sojourn_p50,sojourn_p95,"
                 "sojourn_p99\n";
  }
  Table table({"Case", "Sched", "Migrations", "NoC wait (kcyc)",
               "Mig penalty (kcyc)", "p50 (kcyc)", "p95 (kcyc)",
               "p99 (kcyc)"});

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    const SimResult& r = results[i].sim;
    const char* sched = job.hopWeight == 0 ? "OLS" : "OLS-NOC";
    // Conservation column: every admitted process must run to
    // completion (no lifetimes, no faults, no admission control here).
    std::size_t completed = 0;
    for (const ProcessRunRecord& p : r.processes) {
      if (p.completionCycle >= 0 && !p.retired && !p.rejected && !p.failed) {
        ++completed;
      }
    }
    if (csv) {
      std::cout << job.label << ',' << sched << ',' << job.cores << ','
                << job.linkWidthBytes << ',' << r.processes.size() << ','
                << completed << ',' << r.makespanCycles << ','
                << r.dcacheTotal.misses << ',' << r.migrations << ','
                << r.nocTransfers << ',' << r.nocHopCycles << ','
                << r.nocLinkWaitCycles << ','
                << r.nocMigrationPenaltyCycles << ','
                << r.directoryInvalidationsSent << ','
                << r.directoryInvalidationsFiltered << ','
                << r.sojourn.p50 << ',' << r.sojourn.p95 << ','
                << r.sojourn.p99 << '\n';
    } else {
      table.row()
          .cell(job.label)
          .cell(sched)
          .cell(r.migrations)
          .cell(static_cast<double>(r.nocLinkWaitCycles) / 1e3, 1)
          .cell(static_cast<double>(r.nocMigrationPenaltyCycles) / 1e3, 1)
          .cell(static_cast<double>(r.sojourn.p50) / 1e3, 1)
          .cell(static_cast<double>(r.sojourn.p95) / 1e3, 1)
          .cell(static_cast<double>(r.sojourn.p99) / 1e3, 1);
    }
  }
  if (!csv) {
    std::cout << "=== NoC sweep (mesh size x link width x OLS "
                 "distance-awareness, directory-coherent mesh) ===\n"
              << table.ascii() << '\n';
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      std::cerr << "usage: bench_noc [--csv]\n";
      return 2;
    }
  }
  sweep(csv);
  return 0;
}

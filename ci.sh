#!/bin/sh
# Tier-1 verify: configure, build everything, run the full test suite.
set -eu

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j

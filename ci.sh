#!/bin/sh
# Tier-1 verify: configure, build everything, run the full test suite,
# then regenerate the Fig. 6/7 bench CSVs and check them for paper-shape
# violations and drift against the committed baselines.
set -eu

cmake -B build -S .
cmake --build build -j
cd build
ctest --output-on-failure -j

# Bench baselines (see bench/baselines/check_shapes.py; regenerate the
# CSVs there after an intentional behavior change). Figure 6's isolated
# runs need the wider tolerance: LS ~= LSM per application, with small
# wobbles either way; the aggregate orderings are checked strictly.
if command -v python3 >/dev/null 2>&1; then
  ./bench_fig6_isolated --csv > bench_fig6.csv
  python3 ../bench/baselines/check_shapes.py bench_fig6.csv \
    --tol 0.15 --baseline ../bench/baselines/fig6.csv
  ./bench_fig7_concurrent --csv > bench_fig7.csv
  python3 ../bench/baselines/check_shapes.py bench_fig7.csv \
    --baseline ../bench/baselines/fig7.csv
else
  echo "ci.sh: python3 not found; skipping bench baseline checks" >&2
fi

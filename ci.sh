#!/bin/sh
# Tier-1 verify: configure, build everything, run the full test suite,
# regenerate the bench CSVs and check them for paper-shape violations and
# drift against the committed baselines — then rebuild the tests under
# ASan+UBSan and run them again (benches and examples are skipped in the
# sanitizer configuration; they only re-exercise library code the tests
# already cover).
#
# Extra modes:
#   lint        determinism lint over src/ (tools/determinism_lint.py;
#               the static side of the determinism contract,
#               docs/ARCHITECTURE.md §11) plus clang-tidy with the
#               committed .clang-tidy profile when the binary is
#               available (skipped with a notice otherwise);
#   audit       Debug build with -DLAPSCHED_AUDIT=ON — the LAPS_AUDIT
#               runtime invariant checks execute in every hot layer —
#               and the full test suite under it;
#   tsan        rebuild the tests under ThreadSanitizer (covers the
#               parallel analysis substrate of src/util/parallel.h) and
#               run them;
#   bench       run bench_micro at 1 and 8 analysis threads
#               (--benchmark_format=json) and merge the runs into
#               BENCH_micro.json at the repo root — the machine-readable
#               perf baseline future perf PRs diff against (the previous
#               file's numbers are folded in as previous_* fields);
#   bench-gate  run the bench mode against a saved copy of the committed
#               BENCH_micro.json and fail if any *_speedup field
#               regressed >25% (bench/baselines/check_bench_regression.py)
#               — the scheduled CI perf gate.
#
# Every cmake configure honours LAPSCHED_WERROR (default OFF); CI
# exports LAPSCHED_WERROR=ON so all CI configurations build -Werror.
#
# Usage: ci.sh [tier1|lint|audit|sanitize|tsan|bench|bench-gate|all]
# (default: all)
set -eu

MODE="${1:-all}"
case "$MODE" in
  all|tier1|lint|audit|sanitize|tsan|bench|bench-gate) ;;
  *)
    echo "ci.sh: unknown mode '$MODE' (expected tier1, lint, audit," \
         "sanitize, tsan, bench, bench-gate or all)" >&2
    exit 2
    ;;
esac

WERROR="${LAPSCHED_WERROR:-OFF}"

if [ "$MODE" = "all" ] || [ "$MODE" = "tier1" ]; then
  cmake -B build -S . -DLAPSCHED_WERROR="$WERROR"
  cmake --build build -j
  (cd build && ctest --output-on-failure -j)

  # Bench baselines (see bench/baselines/check_shapes.py; regenerate the
  # CSVs there after an intentional behavior change). Figure 6's isolated
  # runs need the wider tolerance: LS ~= LSM per application, with small
  # wobbles either way; the aggregate orderings are checked strictly.
  if command -v python3 >/dev/null 2>&1; then
    (
      cd build
      ./bench_fig6_isolated --csv > bench_fig6.csv
      python3 ../bench/baselines/check_shapes.py bench_fig6.csv \
        --tol 0.15 --baseline ../bench/baselines/fig6.csv
      ./bench_fig7_concurrent --csv > bench_fig7.csv
      python3 ../bench/baselines/check_shapes.py bench_fig7.csv \
        --baseline ../bench/baselines/fig7.csv
      # Contention sweep: LS >= RS must survive the shared L2 + bounded
      # bus, and LSM's miss margin over LS must not shrink as |T| grows.
      # The column subset keeps the baseline valid if the sweep grows
      # new diagnostic columns.
      ./bench_ablation --csv > bench_ablation.csv
      python3 ../bench/baselines/check_shapes.py bench_ablation.csv \
        --lsm-gap-monotone \
        --baseline ../bench/baselines/ablation_contention.csv \
        --columns case,scheduler,l2_kb,bus_width,t,processes,makespan_cycles,dcache_misses,l2_misses
      ./bench_tables --csv > bench_tables.csv
      python3 ../bench/baselines/check_shapes.py bench_tables.csv \
        --baseline ../bench/baselines/tables.csv
      # Open-workload sweep: no LS/LSM rows, so the paper-shape
      # orderings are skipped; the deterministic CSV is baselined.
      ./bench_open_workload --csv > bench_open_workload.csv
      python3 ../bench/baselines/check_shapes.py bench_open_workload.csv \
        --no-shapes --baseline ../bench/baselines/open_workload.csv
      # Saturation sweep: per-process heavy-tailed arrivals x admission
      # policy. Checks the exact percentile ordering per row, the knee
      # ordering (locality-aware policies saturate later) and the
      # SloShed/QueueCap shedding shapes, then diffs the deterministic
      # CSV against the baseline.
      ./bench_saturation --csv > bench_saturation.csv
      python3 ../bench/baselines/check_shapes.py bench_saturation.csv \
        --no-shapes --percentile-monotone --saturation-shapes \
        --baseline ../bench/baselines/saturation.csv
      # Decision-throughput sweep: the checksum columns prove OLS-old and
      # OLS-idx are decision-identical at every |T| (diffed against the
      # baseline on the machine-independent columns), and the indexed
      # planner must hold its >=5x decisions/sec margin at the largest
      # |T| (--decision-throughput; timing columns are excluded from the
      # baseline diff).
      ./bench_policy_overhead --csv > bench_policy_overhead.csv
      python3 ../bench/baselines/check_shapes.py bench_policy_overhead.csv \
        --no-shapes --decision-throughput \
        --baseline ../bench/baselines/policy_overhead.csv \
        --columns t,scheduler,cores,window,events,decisions,checksum
      # Fault-tolerance sweep: seeded fault injection x retry policy x
      # scheduler (docs §13). Checks that retries recover goodput, that
      # the locality p95 edge survives faults and that departures are
      # conserved on every row, then diffs the seeded CSV against the
      # baseline.
      ./bench_faults --csv > bench_faults.csv
      python3 ../bench/baselines/check_shapes.py bench_faults.csv \
        --no-shapes --percentile-monotone --fault-shapes \
        --baseline ../bench/baselines/faults.csv
      # NoC sweep: mesh size x link width x OLS distance-awareness on
      # the directory-coherent mesh platform. Checks cohort
      # conservation, real routed traffic per row and the hop-weighted
      # scheduler's p95/migration-penalty edge on the largest mesh,
      # then diffs the deterministic CSV against the baseline.
      ./bench_noc --csv > bench_noc.csv
      python3 ../bench/baselines/check_shapes.py bench_noc.csv \
        --no-shapes --percentile-monotone --noc-shapes \
        --baseline ../bench/baselines/noc.csv
    )
  else
    echo "ci.sh: python3 not found; skipping bench baseline checks" >&2
  fi
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "lint" ]; then
  # The determinism lint is the hard gate: src/ must be finding-free
  # under the committed policy, every suppression justified.
  if command -v python3 >/dev/null 2>&1; then
    python3 tools/determinism_lint.py
    python3 tests/tools/lint_selftest.py
  else
    echo "ci.sh: python3 not found; cannot run the determinism lint" >&2
    exit 1
  fi
  # clang-tidy is advisory-but-enforced where available: the committed
  # .clang-tidy profile runs over every library source with
  # warnings-as-errors. Skipped (not failed) when the binary is absent
  # so local runs without LLVM still pass; the CI lint job installs it.
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DLAPSCHED_BUILD_TESTS=OFF -DLAPSCHED_BUILD_BENCHES=OFF \
      -DLAPSCHED_BUILD_EXAMPLES=OFF
    find src -name '*.cpp' | xargs clang-tidy -p build-tidy --quiet
    echo "ci.sh: clang-tidy clean"
  else
    echo "ci.sh: clang-tidy not found; skipping the clang-tidy pass" >&2
  fi
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "audit" ]; then
  # Audit build: every LAPS_AUDIT invariant check executes inline.
  # Debug keeps the checks un-elided; the full suite must stay green
  # with the contract enforced at runtime.
  cmake -B build-audit -S . -DCMAKE_BUILD_TYPE=Debug \
    -DLAPSCHED_AUDIT=ON -DLAPSCHED_WERROR="$WERROR" \
    -DLAPSCHED_BUILD_BENCHES=OFF -DLAPSCHED_BUILD_EXAMPLES=OFF
  cmake --build build-audit -j
  (cd build-audit && ctest --output-on-failure -j)
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "sanitize" ]; then
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DLAPSCHED_SANITIZE=ON -DLAPSCHED_WERROR="$WERROR" \
    -DLAPSCHED_BUILD_BENCHES=OFF -DLAPSCHED_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
fi

if [ "$MODE" = "all" ] || [ "$MODE" = "tsan" ]; then
  # Tests-only TSan configuration: the thread pool and the parallel
  # analysis regions run under ThreadSanitizer. LAPS_THREADS widens the
  # default regions; the bit-identity tests additionally pin explicit
  # thread counts themselves.
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DLAPSCHED_SANITIZE=thread -DLAPSCHED_WERROR="$WERROR" \
    -DLAPSCHED_BUILD_BENCHES=OFF -DLAPSCHED_BUILD_EXAMPLES=OFF
  cmake --build build-tsan -j
  (cd build-tsan && LAPS_THREADS=4 ctest --output-on-failure -j)
fi

if [ "$MODE" = "bench" ] || [ "$MODE" = "bench-gate" ]; then
  if [ "$MODE" = "bench-gate" ]; then
    # Snapshot the committed baseline before the bench run folds the
    # fresh numbers into BENCH_micro.json.
    cp BENCH_micro.json build_bench_baseline.json 2>/dev/null || {
      echo "ci.sh: no committed BENCH_micro.json to gate against" >&2
      exit 1
    }
  fi
  cmake -B build -S . -DLAPSCHED_WERROR="$WERROR"
  cmake --build build -j --target bench_micro
  if [ ! -x build/bench_micro ]; then
    echo "ci.sh: bench_micro not built (google-benchmark missing?)" >&2
    exit 1
  fi
  LAPS_THREADS=1 ./build/bench_micro --benchmark_format=json \
    > build/bench_micro_t1.json
  LAPS_THREADS=8 ./build/bench_micro --benchmark_format=json \
    --benchmark_filter='BM_SharingMatrixSuite|BM_WorkloadFootprints|BM_SharingMatrixIncremental' \
    > build/bench_micro_t8.json
  python3 bench/baselines/merge_bench_json.py \
    build/bench_micro_t1.json --t8 build/bench_micro_t8.json \
    --previous BENCH_micro.json -o BENCH_micro.json
  echo "ci.sh: wrote BENCH_micro.json"
  # Saturation sweep CSV next to the micro numbers: deterministic, so it
  # doubles as a cross-host reproducibility probe of the integer-only
  # arrival sampling (the artifact must match the committed baseline on
  # any runner).
  cmake --build build -j --target bench_saturation
  ./build/bench_saturation --csv > build/bench_saturation.csv
  python3 bench/baselines/check_shapes.py build/bench_saturation.csv \
    --no-shapes --percentile-monotone --saturation-shapes \
    --baseline bench/baselines/saturation.csv
  echo "ci.sh: wrote build/bench_saturation.csv"
  # Scheduling-decision throughput: human-readable table for the bench
  # log plus the CSV identity/speedup checks of the tier-1 run.
  cmake --build build -j --target bench_policy_overhead
  ./build/bench_policy_overhead
  ./build/bench_policy_overhead --csv > build/bench_policy_overhead.csv
  python3 bench/baselines/check_shapes.py build/bench_policy_overhead.csv \
    --no-shapes --decision-throughput \
    --baseline bench/baselines/policy_overhead.csv \
    --columns t,scheduler,cores,window,events,decisions,checksum
  echo "ci.sh: wrote build/bench_policy_overhead.csv"
  # Fault-tolerance sweep: the seeded fault/retry CSV doubles as a
  # cross-host reproducibility probe of the integer-only fault streams.
  cmake --build build -j --target bench_faults
  ./build/bench_faults --csv > build/bench_faults.csv
  python3 bench/baselines/check_shapes.py build/bench_faults.csv \
    --no-shapes --percentile-monotone --fault-shapes \
    --baseline bench/baselines/faults.csv
  echo "ci.sh: wrote build/bench_faults.csv"
  # NoC sweep: the deterministic mesh/directory CSV doubles as a
  # cross-host reproducibility probe of the integer-only NoC timing.
  cmake --build build -j --target bench_noc
  ./build/bench_noc --csv > build/bench_noc.csv
  python3 bench/baselines/check_shapes.py build/bench_noc.csv \
    --no-shapes --percentile-monotone --noc-shapes \
    --baseline bench/baselines/noc.csv
  echo "ci.sh: wrote build/bench_noc.csv"
  if [ "$MODE" = "bench-gate" ]; then
    python3 bench/baselines/check_bench_regression.py \
      BENCH_micro.json build_bench_baseline.json
    rm -f build_bench_baseline.json
  fi
fi

#!/usr/bin/env python3
"""Determinism lint: static enforcement of the determinism contract.

Every result this repository publishes rests on one invariant: identical
inputs produce bit-identical SimResults on every platform, compiler and
thread count (docs/ARCHITECTURE.md §11). This linter bans the constructs
that silently break that contract when they appear in model code:

  no-float            float / double arithmetic (rounding, FMA contraction
                      and x87 excess precision vary across toolchains)
  unordered-container std::unordered_map / std::unordered_set (iteration
                      order is implementation-defined; one refactor away
                      from feeding hash order into model state)
  wall-clock          std::chrono and friends as model inputs (time is
                      not reproducible)
  ambient-random      rand() / std::random_device / std:: engines (the
                      project's integer-only laps::Rng is the one
                      sanctioned randomness source)
  pointer-keyed       ordering or keying on pointer values (allocation
                      addresses differ run to run)
  raw-thread          std::thread / std::async outside util/parallel (the
                      deterministic pool is the one sanctioned
                      parallelism substrate)

Suppressions: a finding is allowed by a justification comment on the
same line or the immediately preceding line:

    // LINT-ALLOW(rule-name): why this use cannot break bit-identity

The justification is mandatory and must carry real content (>= 10
characters). A suppression that no longer matches any finding is itself
reported (stale-suppression) so the annotations cannot rot.

Policy: tools/lint_policy.toml exempts reporting-only layers from
specific rules, with a written reason per entry (see that file).

Engines: token-level scanning with a hand-rolled comment/string stripper
by default; when the libclang Python bindings are importable
(--engine=auto probes for them) the same rules run over libclang's
lexer tokens instead, which is immune to stripper corner cases. Both
engines see identical rule logic; CI runs whichever the runner has.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - python < 3.11
    tomllib = None


@dataclasses.dataclass(frozen=True)
class Rule:
    name: str
    pattern: re.Pattern
    message: str


RULES = [
    Rule(
        "no-float",
        re.compile(r"\b(?:float|double)\b"),
        "floating point in model code: rounding mode, FMA contraction and "
        "excess precision vary across toolchains and break bit-identity",
    ),
    Rule(
        "unordered-container",
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        "unordered container in model code: iteration order is "
        "implementation-defined; prove the use order-insensitive "
        "(lookup-only) or switch to an ordered container",
    ),
    Rule(
        "wall-clock",
        re.compile(
            r"\bstd::chrono\b|\bgettimeofday\b|\bclock_gettime\b|"
            r"\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b|"
            r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
        ),
        "wall-clock time in model code: results must not depend on when "
        "the simulation runs",
    ),
    Rule(
        "ambient-random",
        re.compile(
            r"\bstd::random_device\b|\bstd::mt19937(?:_64)?\b|"
            r"\bstd::default_random_engine\b|\bstd::minstd_rand0?\b|"
            r"\bstd::uniform_(?:int|real)_distribution\b|"
            r"(?<![\w:])s?rand\s*\("
        ),
        "ambient randomness in model code: use the integer-only seeded "
        "laps::Rng (util/rng.h) so streams replay bit-for-bit",
    ),
    Rule(
        "pointer-keyed",
        re.compile(
            r"\bstd::(?:map|set|multimap|multiset|unordered_map|"
            r"unordered_set)<[^,>]*\*\s*[,>]|"
            r"\bstd::hash<[^>]*\*\s*>|"
            r"\breinterpret_cast<\s*(?:std::)?uintptr_t\s*>"
        ),
        "pointer-keyed ordering in model code: allocation addresses "
        "differ run to run; key on stable ids instead",
    ),
    Rule(
        "raw-thread",
        re.compile(r"\bstd::(?:thread|jthread|async)\b"),
        "raw threading outside util/parallel: the deterministic pool "
        "(util/parallel.h) is the one sanctioned parallelism substrate",
    ),
]

RULE_NAMES = {rule.name for rule in RULES}

ALLOW_RE = re.compile(r"LINT-ALLOW\(([a-z0-9-]+)\)\s*:?\s*(.*)")

MIN_JUSTIFICATION_CHARS = 10


@dataclasses.dataclass
class Suppression:
    rule: str
    line: int            # line the suppression comment sits on
    justification: str
    used: bool = False


@dataclasses.dataclass
class Finding:
    path: pathlib.Path
    line: int
    rule: str
    message: str

    def render(self, root: pathlib.Path) -> str:
        try:
            shown = self.path.relative_to(root)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> list[str]:
    """Returns per-line code with comments, string and char literals
    blanked (newlines preserved so line numbers survive)."""
    out: list[str] = []
    i, n = 0, len(text)
    line: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(line))
            line = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == "R" and nxt == '"':
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")" + m.group(1) + '"'
                    i += m.end()
                    continue
            if c == '"':
                state = "string"
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            line.append(c)
            i += 1
            continue
        if state in ("string", "char"):
            if c == "\\":
                i += 2
                continue
            if (state == "string" and c == '"') or (state == "char" and c == "'"):
                state = "code"
            i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                i += len(raw_delim)
            else:
                i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
            continue
        if state == "line_comment":
            i += 1
            continue
    out.append("".join(line))
    return out


def code_lines_token_engine(text: str) -> list[str]:
    return strip_comments_and_strings(text)


def code_lines_libclang_engine(path: pathlib.Path, text: str) -> list[str]:
    """Reconstructs comment/literal-free per-line code from libclang's
    lexer tokens. Same downstream rule logic as the token engine."""
    import clang.cindex as ci  # noqa: PLC0415 - optional dependency

    index = ci.Index.create()
    tu = index.parse(
        str(path),
        args=["-std=c++20", "-fsyntax-only"],
        options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD,
    )
    lines = [""] * (text.count("\n") + 1)
    skip = {ci.TokenKind.COMMENT, ci.TokenKind.LITERAL}
    for token in tu.cursor.get_tokens():
        if token.kind in skip:
            continue
        row = token.location.line - 1
        if 0 <= row < len(lines):
            lines[row] += " " + token.spelling
    return lines


def collect_suppressions(raw_lines: list[str]) -> tuple[list[Suppression], list[tuple[int, str]]]:
    """Scans the *raw* source (comments included) for LINT-ALLOW
    annotations. Returns (suppressions, malformed) where malformed is a
    list of (line, problem)."""
    suppressions: list[Suppression] = []
    malformed: list[tuple[int, str]] = []
    for idx, raw in enumerate(raw_lines, start=1):
        # Only the call form counts; prose mentions of LINT-ALLOW in
        # documentation comments are not annotations.
        if "LINT-ALLOW(" not in raw:
            continue
        m = ALLOW_RE.search(raw)
        if not m:
            malformed.append(
                (idx, "malformed LINT-ALLOW (expected LINT-ALLOW(rule): why)"))
            continue
        rule, justification = m.group(1), m.group(2).strip()
        if rule not in RULE_NAMES:
            malformed.append((idx, f"LINT-ALLOW names unknown rule '{rule}'"))
            continue
        if len(justification) < MIN_JUSTIFICATION_CHARS:
            malformed.append(
                (idx,
                 f"LINT-ALLOW({rule}) carries no real justification "
                 f"(need >= {MIN_JUSTIFICATION_CHARS} characters after the colon)"))
            continue
        suppressions.append(Suppression(rule, idx, justification))
    return suppressions, malformed


@dataclasses.dataclass
class Policy:
    root: str = "src"
    # (path-prefix, rule or '*', why)
    exemptions: list[tuple[str, str, str]] = dataclasses.field(
        default_factory=list)

    def exempt(self, rel: str, rule: str) -> bool:
        for prefix, exempt_rule, _why in self.exemptions:
            if rel.startswith(prefix) and exempt_rule in ("*", rule):
                return True
        return False


def load_policy(path: pathlib.Path) -> Policy:
    if tomllib is None:
        raise SystemExit("determinism_lint: python >= 3.11 (tomllib) required "
                         "to read the policy file")
    with path.open("rb") as fh:
        data = tomllib.load(fh)
    policy = Policy()
    policy.root = data.get("lint", {}).get("root", "src")
    for entry in data.get("exempt", []):
        prefix = entry.get("path")
        rules = entry.get("rules", ["*"])
        why = entry.get("why", "")
        if not prefix:
            raise SystemExit("determinism_lint: policy exemption missing 'path'")
        if len(why.strip()) < MIN_JUSTIFICATION_CHARS:
            raise SystemExit(
                f"determinism_lint: policy exemption for '{prefix}' needs a "
                "written 'why'")
        for rule in rules:
            if rule != "*" and rule not in RULE_NAMES:
                raise SystemExit(
                    f"determinism_lint: policy exemption for '{prefix}' names "
                    f"unknown rule '{rule}'")
            policy.exemptions.append((prefix, rule, why))
    return policy


def lint_file(path: pathlib.Path, rel: str, policy: Policy,
              engine: str) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = text.split("\n")
    if engine == "libclang":
        code_lines = code_lines_libclang_engine(path, text)
    else:
        code_lines = code_lines_token_engine(text)

    suppressions, malformed = collect_suppressions(raw_lines)
    findings = [Finding(path, line, "bad-suppression", problem)
                for line, problem in malformed]

    def allowed(rule: str, line: int) -> bool:
        for sup in suppressions:
            if sup.rule == rule and sup.line in (line, line - 1):
                sup.used = True
                return True
        return False

    for idx, code in enumerate(code_lines, start=1):
        if not code.strip():
            continue
        for rule in RULES:
            if not rule.pattern.search(code):
                continue
            if policy.exempt(rel, rule.name):
                continue
            if allowed(rule.name, idx):
                continue
            findings.append(Finding(path, idx, rule.name, rule.message))

    # A suppression that allowed nothing is dead weight — or worse, a
    # leftover claim about code that changed. Exempted files keep their
    # annotations (the policy already covers them).
    for sup in suppressions:
        if not sup.used and not policy.exempt(rel, sup.rule):
            findings.append(Finding(
                path, sup.line, "stale-suppression",
                f"LINT-ALLOW({sup.rule}) matches no finding on this or the "
                "next line; delete it or move it next to the hazard"))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", type=pathlib.Path,
                        help="explicit files to lint (default: policy root)")
    parser.add_argument("--policy", type=pathlib.Path, default=None,
                        help="policy TOML (default: lint_policy.toml next to "
                             "this script; --no-policy to disable)")
    parser.add_argument("--no-policy", action="store_true",
                        help="run with an empty policy (fixture self-tests)")
    parser.add_argument("--root", type=pathlib.Path, default=None,
                        help="directory to scan (overrides the policy root)")
    parser.add_argument("--engine", choices=["auto", "token", "libclang"],
                        default="auto",
                        help="auto probes for the libclang python bindings "
                             "and falls back to the token engine")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.name}: {rule.message}")
        return 0

    script_dir = pathlib.Path(__file__).resolve().parent
    repo_root = script_dir.parent

    if args.no_policy:
        policy = Policy()
    else:
        policy_path = args.policy or (script_dir / "lint_policy.toml")
        if not policy_path.exists():
            print(f"determinism_lint: policy file {policy_path} not found "
                  "(use --no-policy to run without one)", file=sys.stderr)
            return 2
        policy = load_policy(policy_path)
        repo_root = policy_path.resolve().parent.parent

    engine = args.engine
    if engine == "auto":
        try:
            import clang.cindex  # noqa: F401, PLC0415
            engine = "libclang"
        except Exception:
            engine = "token"
    elif engine == "libclang":
        try:
            import clang.cindex  # noqa: F401, PLC0415
        except Exception as exc:
            print(f"determinism_lint: libclang engine requested but the "
                  f"python bindings are unavailable ({exc})", file=sys.stderr)
            return 2

    scan_root = (args.root or (repo_root / policy.root)).resolve()
    if args.files:
        files = [f.resolve() for f in args.files]
    else:
        if not scan_root.is_dir():
            print(f"determinism_lint: scan root {scan_root} is not a "
                  "directory", file=sys.stderr)
            return 2
        files = sorted(p for p in scan_root.rglob("*")
                       if p.suffix in (".h", ".hpp", ".cc", ".cpp", ".cxx"))

    all_findings: list[Finding] = []
    for path in files:
        try:
            rel = str(path.relative_to(scan_root))
        except ValueError:
            rel = path.name
        all_findings.extend(lint_file(path, rel, policy, engine))

    for finding in sorted(all_findings,
                          key=lambda f: (str(f.path), f.line, f.rule)):
        print(finding.render(scan_root))
    if all_findings:
        print(f"determinism_lint[{engine}]: {len(all_findings)} finding(s) "
              f"over {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"determinism_lint[{engine}]: clean ({len(files)} file(s))",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
